// Tests for OnlineCommitteeScheduler — Alg. 1's listening loops end to end:
// bootstrap condition, arrival handling, N_max cutoff, failures/recoveries.

#include "mvcom/online.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace {

using mvcom::core::OnlineCommitteeScheduler;
using mvcom::core::OnlineSchedulerConfig;
using mvcom::txn::ShardReport;

ShardReport report(std::uint32_t id, std::uint64_t txs, double latency) {
  ShardReport r;
  r.committee_id = id;
  r.tx_count = txs;
  r.formation_latency = latency;
  r.consensus_latency = 0.0;
  return r;
}

OnlineSchedulerConfig config(std::size_t expected = 10,
                             std::uint64_t capacity = 4000) {
  OnlineSchedulerConfig c;
  c.alpha = 1.5;
  c.capacity = capacity;
  c.expected_committees = expected;
  c.se.threads = 2;
  return c;
}

TEST(OnlineSchedulerTest, BootstrapWaitsForNminAndBindingCapacity) {
  // Alg. 1 line 1: exploration starts only when the number of arrived
  // committees exceeds N_min AND Σ s > Ĉ.
  OnlineCommitteeScheduler scheduler(config(10, 4000), 1);
  EXPECT_EQ(scheduler.n_min(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(scheduler.on_report(report(i, 500, 700.0 + i * 10)));
    EXPECT_FALSE(scheduler.bootstrapped());  // <= N_min arrived
  }
  // 6th arrival: count > N_min but Σ s = 3000 <= 4000: still waiting.
  EXPECT_TRUE(scheduler.on_report(report(5, 500, 760.0)));
  EXPECT_FALSE(scheduler.bootstrapped());
  // 7th arrival pushes Σ s to 4200 > Ĉ: bootstrap.
  EXPECT_TRUE(scheduler.on_report(report(6, 1200, 770.0)));
  EXPECT_TRUE(scheduler.bootstrapped());
}

TEST(OnlineSchedulerTest, DuplicateReportsAreRefused) {
  OnlineCommitteeScheduler scheduler(config(), 2);
  EXPECT_TRUE(scheduler.on_report(report(3, 500, 700.0)));
  EXPECT_FALSE(scheduler.on_report(report(3, 999, 800.0)));
  EXPECT_EQ(scheduler.arrived(), 1u);
}

TEST(OnlineSchedulerTest, StopsListeningAtNmax) {
  // N_max = 80% of 10 expected → the 8th arrival closes the door.
  OnlineCommitteeScheduler scheduler(config(), 3);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(scheduler.on_report(report(i, 600, 700.0 + i)));
  }
  EXPECT_FALSE(scheduler.listening());
  EXPECT_FALSE(scheduler.on_report(report(8, 600, 710.0)));
  EXPECT_EQ(scheduler.arrived(), 8u);
}

TEST(OnlineSchedulerTest, DecisionIsFeasibleAndUsesArrivedCommittees) {
  OnlineCommitteeScheduler scheduler(config(10, 4000), 4);
  mvcom::common::Rng rng(5);
  for (std::uint32_t i = 0; i < 8; ++i) {
    scheduler.on_report(report(i, 500 + rng.below(200), 650.0 + i * 20.0));
  }
  scheduler.explore(1000);
  const auto decision = scheduler.decide();
  ASSERT_TRUE(decision.feasible);
  EXPECT_GE(decision.permitted_ids.size(), scheduler.n_min());
  EXPECT_LE(decision.permitted_txs, 4000u);
  for (const std::uint32_t id : decision.permitted_ids) {
    EXPECT_LT(id, 8u);
  }
}

TEST(OnlineSchedulerTest, SlackCapacityPermitsEveryone) {
  // Capacity never binds: no bootstrap, decision = everyone (if N_min ok).
  OnlineCommitteeScheduler scheduler(config(10, 1'000'000), 5);
  for (std::uint32_t i = 0; i < 8; ++i) {
    scheduler.on_report(report(i, 500, 700.0 + i));
  }
  EXPECT_FALSE(scheduler.bootstrapped());
  const auto decision = scheduler.decide();
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.permitted_ids.size(), 8u);
}

TEST(OnlineSchedulerTest, FailureRemovesCommitteeFromDecisions) {
  OnlineCommitteeScheduler scheduler(config(10, 4000), 6);
  for (std::uint32_t i = 0; i < 8; ++i) {
    scheduler.on_report(report(i, 700, 650.0 + i * 15.0));
  }
  scheduler.explore(500);
  scheduler.on_failure(2);
  scheduler.explore(500);
  const auto decision = scheduler.decide();
  ASSERT_TRUE(decision.feasible);
  for (const std::uint32_t id : decision.permitted_ids) {
    EXPECT_NE(id, 2u);
  }
}

TEST(OnlineSchedulerTest, FailureOfUnknownIdIsNoop) {
  OnlineCommitteeScheduler scheduler(config(), 7);
  scheduler.on_report(report(0, 500, 700.0));
  scheduler.on_failure(42);
  EXPECT_EQ(scheduler.arrived(), 1u);
}

TEST(OnlineSchedulerTest, RecoveryRejoinsEvenAfterNmax) {
  OnlineCommitteeScheduler scheduler(config(10, 4000), 8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    scheduler.on_report(report(i, 700, 650.0 + i * 15.0));
  }
  EXPECT_FALSE(scheduler.listening());
  scheduler.on_failure(4);
  EXPECT_EQ(scheduler.arrived(), 7u);
  // Fig. 9(a): the failed committee recovers online shortly.
  EXPECT_TRUE(scheduler.on_recovery(report(4, 700, 710.0)));
  EXPECT_EQ(scheduler.arrived(), 8u);
  EXPECT_FALSE(scheduler.listening());  // the door stays closed for others
  EXPECT_FALSE(scheduler.on_report(report(9, 700, 720.0)));
}

TEST(OnlineSchedulerTest, AllCommitteesFailingResetsBootstrap) {
  OnlineCommitteeScheduler scheduler(config(4, 1000), 9);
  scheduler.on_report(report(0, 600, 700.0));
  scheduler.on_report(report(1, 600, 710.0));
  scheduler.on_report(report(2, 600, 720.0));
  ASSERT_TRUE(scheduler.bootstrapped());
  scheduler.on_failure(0);
  scheduler.on_failure(1);
  scheduler.on_failure(2);
  EXPECT_FALSE(scheduler.bootstrapped());
  EXPECT_FALSE(scheduler.decide().feasible);
}

TEST(OnlineSchedulerTest, RejectsDegenerateConfigs) {
  OnlineSchedulerConfig no_capacity = config();
  no_capacity.capacity = 0;
  EXPECT_THROW(OnlineCommitteeScheduler(no_capacity, 1),
               std::invalid_argument);
  OnlineSchedulerConfig no_expected = config();
  no_expected.expected_committees = 0;
  EXPECT_THROW(OnlineCommitteeScheduler(no_expected, 1),
               std::invalid_argument);
  OnlineSchedulerConfig bad_fraction = config();
  bad_fraction.n_max_fraction = 1.5;
  EXPECT_THROW(OnlineCommitteeScheduler(bad_fraction, 1),
               std::invalid_argument);
}

// Regression: N_min = n_min_fraction·expected was truncated toward zero
// (0.5 × 5 → 2), silently weakening the Eq.-(3) lower bound. It now rounds
// UP, and pairs where N_min ≥ ⌈n_max_fraction·expected⌉ — which would make
// bootstrap unreachable because listening stops at N_max — are rejected.
TEST(OnlineSchedulerTest, NminRoundsUpPerEqThree) {
  OnlineCommitteeScheduler scheduler(config(5, 4000), 1);
  EXPECT_EQ(scheduler.n_min(), 3u);  // ⌈0.5·5⌉, not ⌊0.5·5⌋ = 2
}

TEST(OnlineSchedulerTest, UnreachableBootstrapConfigsAreRejected) {
  // n_min_fraction = 1.0: N_min = expected, but listening stops at
  // N_max = ⌈0.8·expected⌉ < expected — bootstrap could never trigger.
  OnlineSchedulerConfig full_min = config();
  full_min.n_min_fraction = 1.0;
  EXPECT_THROW(OnlineCommitteeScheduler(full_min, 1), std::invalid_argument);
  // Equal fractions collapse to N_min == N_max: "strictly more than N_min"
  // arrivals is likewise impossible.
  OnlineSchedulerConfig equal = config();
  equal.n_min_fraction = 0.8;
  equal.n_max_fraction = 0.8;
  EXPECT_THROW(OnlineCommitteeScheduler(equal, 1), std::invalid_argument);
}

TEST(OnlineSchedulerTest, OverflowingReportIsRefused) {
  OnlineCommitteeScheduler scheduler(config(), 3);
  ASSERT_TRUE(scheduler.on_report(report(0, 500, 700.0)));
  EXPECT_FALSE(scheduler.on_report(
      report(1, std::numeric_limits<std::uint64_t>::max(), 710.0)));
  EXPECT_EQ(scheduler.arrived(), 1u);
  // The scheduler keeps accepting sane reports afterwards.
  EXPECT_TRUE(scheduler.on_report(report(2, 600, 720.0)));
}

// Regression: the admission overflow check used to rescan all reports per
// arrival (O(|I|²) across an epoch). It now compares against a cached
// running total, which must be *decremented* on failure — a stale total
// would wrongly refuse reports that fit after a big committee failed.
TEST(OnlineSchedulerTest, CachedTotalTracksArrivalsAndFailures) {
  constexpr std::uint64_t kHuge =
      std::numeric_limits<std::uint64_t>::max() - 100;
  OnlineCommitteeScheduler scheduler(config(), 3);
  ASSERT_TRUE(scheduler.on_report(report(0, kHuge, 700.0)));
  EXPECT_EQ(scheduler.total_reported_txs(), kHuge);
  // Near-max total: the next big report must be refused...
  EXPECT_FALSE(scheduler.on_report(report(1, 200, 710.0)));
  // ...but once the huge committee fails, the freed budget is usable again.
  scheduler.on_failure(0);
  EXPECT_EQ(scheduler.total_reported_txs(), 0u);
  EXPECT_TRUE(scheduler.on_report(report(1, kHuge, 710.0)));
  EXPECT_EQ(scheduler.total_reported_txs(), kHuge);
}

// Regression for the decide() lock-step guard: it used to compare only the
// *sizes* of the SE instance and the live report set, so an interleaving of
// failures and recoveries that restores the count but permutes or replaces
// the membership would go undetected. The guard now compares committee ids
// position by position.
TEST(OnlineSchedulerTest, DecideSurvivesFailRecoverReordering) {
  OnlineCommitteeScheduler scheduler(config(10, 4000), 11);
  mvcom::common::Rng rng(11);
  for (std::uint32_t i = 0; i < 8; ++i) {
    scheduler.on_report(report(i, 500 + rng.below(300), 650.0 + i * 10.0));
  }
  scheduler.explore(500);
  // Fail two committees, then recover them in swapped order: the live set
  // has the original size but a different id order than at bootstrap.
  scheduler.on_failure(1);
  scheduler.on_failure(6);
  ASSERT_TRUE(scheduler.on_recovery(report(6, 700, 715.0)));
  ASSERT_TRUE(scheduler.on_recovery(report(1, 700, 655.0)));
  scheduler.explore(500);
  const auto decision = scheduler.decide();
  ASSERT_TRUE(decision.feasible);
  EXPECT_LE(decision.permitted_txs, 4000u);
  for (const std::uint32_t id : decision.permitted_ids) {
    EXPECT_LT(id, 8u);  // only live committees may be permitted
  }
}

// on_recovery edge cases: the recovery door is only for committees that
// actually went through on_failure — otherwise it would double as a
// late-join (or duplicate-report) loophole after listening stopped.
TEST(OnlineSchedulerTest, RecoveryOfNeverFailedIdIsRefused) {
  OnlineCommitteeScheduler scheduler(config(10, 4000), 12);
  for (std::uint32_t i = 0; i < 6; ++i) {
    scheduler.on_report(report(i, 700, 650.0 + i));
  }
  // Id 3 is alive: "recovering" it must not inject a second report.
  EXPECT_FALSE(scheduler.on_recovery(report(3, 900, 700.0)));
  // Id 42 was never seen at all.
  EXPECT_FALSE(scheduler.on_recovery(report(42, 700, 700.0)));
  EXPECT_EQ(scheduler.arrived(), 6u);
}

TEST(OnlineSchedulerTest, RecoveryDoorClosesAfterUse) {
  OnlineCommitteeScheduler scheduler(config(10, 4000), 13);
  for (std::uint32_t i = 0; i < 8; ++i) {
    scheduler.on_report(report(i, 700, 650.0 + i));
  }
  scheduler.on_failure(4);
  EXPECT_TRUE(scheduler.on_recovery(report(4, 700, 712.0)));
  // A second "recovery" of the same id is a duplicate, not a rejoin.
  EXPECT_FALSE(scheduler.on_recovery(report(4, 900, 713.0)));
  EXPECT_EQ(scheduler.arrived(), 8u);
}

TEST(OnlineSchedulerTest, RecoveryWithDifferentTxCountUsesTheNewReport) {
  // A recovering committee may legitimately re-report a different s_i (it
  // kept packaging while partitioned). The recovery door accepts the fresh
  // report once — the supervisor layer is responsible for verifying it.
  OnlineCommitteeScheduler scheduler(config(10, 4000), 14);
  for (std::uint32_t i = 0; i < 8; ++i) {
    scheduler.on_report(report(i, 700, 650.0 + i));
  }
  scheduler.on_failure(2);
  EXPECT_EQ(scheduler.total_reported_txs(), 7u * 700u);
  ASSERT_TRUE(scheduler.on_recovery(report(2, 900, 705.0)));
  EXPECT_EQ(scheduler.total_reported_txs(), 7u * 700u + 900u);
  bool found = false;
  for (const auto& r : scheduler.reports()) {
    if (r.committee_id == 2) {
      found = true;
      EXPECT_EQ(r.tx_count, 900u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
