// Tests for the transaction-trace generator, CSV I/O, and workload builder.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "common/rng.hpp"
#include "txn/accounts/model.hpp"
#include "txn/trace_generator.hpp"
#include "txn/trace_io.hpp"
#include "txn/workload.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::txn::generate_trace;
using mvcom::txn::load_trace_csv;
using mvcom::txn::sample_two_phase_latency;
using mvcom::txn::ShardFill;
using mvcom::txn::Trace;
using mvcom::txn::TraceGeneratorConfig;
using mvcom::txn::WorkloadConfig;
using mvcom::txn::WorkloadGenerator;
using mvcom::txn::write_trace_csv;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("mvcom-test-" + std::to_string(std::rand()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::filesystem::path path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(TraceGeneratorTest, PaperCalibration) {
  // §VI-A: 1378 blocks sampled from the first 1.5M TXs of January 2016.
  Rng rng(1);
  const Trace trace = generate_trace({}, rng);
  EXPECT_EQ(trace.blocks.size(), 1378u);
  EXPECT_EQ(trace.total_txs(), 1'500'000u);
}

TEST(TraceGeneratorTest, BlocksSortedByTimeWithPositiveCounts) {
  Rng rng(2);
  const Trace trace = generate_trace({}, rng);
  for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
    EXPECT_GE(trace.blocks[i].tx_count, 1u);
    EXPECT_EQ(trace.blocks[i].block_id, i);
    if (i > 0) {
      EXPECT_GT(trace.blocks[i].btime, trace.blocks[i - 1].btime);
    }
  }
  EXPECT_GE(trace.blocks.front().btime, 1451606400.0);  // 2016-01-01
}

TEST(TraceGeneratorTest, InterBlockMeanApprox600s) {
  Rng rng(3);
  TraceGeneratorConfig config;
  config.num_blocks = 20000;
  config.target_total_txs = 20'000'000;
  const Trace trace = generate_trace(config, rng);
  const double span = trace.blocks.back().btime - trace.blocks.front().btime;
  EXPECT_NEAR(span / static_cast<double>(trace.blocks.size() - 1), 600.0,
              20.0);
}

TEST(TraceGeneratorTest, HashesAreUniqueHex) {
  Rng rng(4);
  const Trace trace = generate_trace({}, rng);
  std::set<std::string> hashes;
  for (const auto& b : trace.blocks) {
    EXPECT_EQ(b.bhash.size(), 64u);
    hashes.insert(b.bhash);
  }
  EXPECT_EQ(hashes.size(), trace.blocks.size());
}

TEST(TraceGeneratorTest, DeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  const Trace ta = generate_trace({}, a);
  const Trace tb = generate_trace({}, b);
  ASSERT_EQ(ta.blocks.size(), tb.blocks.size());
  for (std::size_t i = 0; i < ta.blocks.size(); ++i) {
    EXPECT_EQ(ta.blocks[i].tx_count, tb.blocks[i].tx_count);
    EXPECT_EQ(ta.blocks[i].bhash, tb.blocks[i].bhash);
  }
}

TEST(TraceGeneratorTest, RejectsDegenerateConfigs) {
  Rng rng(6);
  TraceGeneratorConfig zero_blocks;
  zero_blocks.num_blocks = 0;
  EXPECT_THROW(generate_trace(zero_blocks, rng), std::invalid_argument);
  TraceGeneratorConfig too_few_txs;
  too_few_txs.num_blocks = 100;
  too_few_txs.target_total_txs = 50;
  EXPECT_THROW(generate_trace(too_few_txs, rng), std::invalid_argument);
}

TEST(TraceIoTest, RoundtripPreservesEverything) {
  Rng rng(7);
  TraceGeneratorConfig config;
  config.num_blocks = 50;
  config.target_total_txs = 50'000;
  const Trace trace = generate_trace(config, rng);
  TempDir dir;
  const auto path = dir.path() / "trace.csv";
  write_trace_csv(trace, path);
  const Trace loaded = load_trace_csv(path);
  ASSERT_EQ(loaded.blocks.size(), trace.blocks.size());
  for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
    EXPECT_EQ(loaded.blocks[i].block_id, trace.blocks[i].block_id);
    EXPECT_EQ(loaded.blocks[i].bhash, trace.blocks[i].bhash);
    EXPECT_EQ(loaded.blocks[i].tx_count, trace.blocks[i].tx_count);
    EXPECT_NEAR(loaded.blocks[i].btime, trace.blocks[i].btime, 1.0);
  }
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/trace.csv"), std::runtime_error);
}

TEST(TraceIoTest, AccountTxRoundtripPreservesEverything) {
  mvcom::txn::AccountModelConfig config;
  config.num_accounts = 2'000;
  config.num_shards = 8;
  config.txs_per_epoch = 500;
  config.cross_shard_ratio = 0.4;
  const mvcom::txn::AccountTxGenerator gen(config);
  const auto epoch = gen.epoch_keyed(7, 1);
  TempDir dir;
  const auto path = dir.path() / "accounts.csv";
  mvcom::txn::write_account_txs_csv(epoch.txs, path);
  const auto loaded = mvcom::txn::load_account_txs_csv(path);
  ASSERT_EQ(loaded.size(), epoch.txs.size());
  for (std::size_t i = 0; i < epoch.txs.size(); ++i) {
    EXPECT_EQ(loaded[i].tx_id, epoch.txs[i].tx_id);
    EXPECT_EQ(loaded[i].sender, epoch.txs[i].sender);
    EXPECT_EQ(loaded[i].reads, epoch.txs[i].reads);    // order + content
    EXPECT_EQ(loaded[i].writes, epoch.txs[i].writes);
    EXPECT_NEAR(loaded[i].timestamp, epoch.txs[i].timestamp, 1e-3);
  }
}

TEST(TraceIoTest, AccountTxEmptySetsSurviveTheRoundtrip) {
  std::vector<mvcom::txn::AccountTx> txs(2);
  txs[0].tx_id = 1;
  txs[0].timestamp = 10.0;
  txs[0].sender = 42;  // no reads, no writes — both fields empty in the CSV
  txs[1].tx_id = 2;
  txs[1].timestamp = 11.0;
  txs[1].sender = 7;
  txs[1].writes = {1, 2, 3};
  TempDir dir;
  const auto path = dir.path() / "sparse.csv";
  mvcom::txn::write_account_txs_csv(txs, path);
  const auto loaded = mvcom::txn::load_account_txs_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded[0].reads.empty());
  EXPECT_TRUE(loaded[0].writes.empty());
  EXPECT_EQ(loaded[1].writes, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(WorkloadTest, OneBlockModeGivesEachCommitteeOneBlock) {
  Rng rng(8);
  TraceGeneratorConfig tc;
  tc.num_blocks = 100;
  tc.target_total_txs = 100'000;
  Trace trace = generate_trace(tc, rng);
  std::set<std::uint64_t> block_sizes;
  for (const auto& b : trace.blocks) block_sizes.insert(b.tx_count);

  WorkloadConfig wc;
  wc.num_committees = 30;
  const WorkloadGenerator gen(std::move(trace), wc);
  const auto workload = gen.epoch(rng);
  ASSERT_EQ(workload.reports.size(), 30u);
  for (const auto& r : workload.reports) {
    // Every shard's count equals some single block's count.
    EXPECT_TRUE(block_sizes.count(r.tx_count)) << r.tx_count;
    EXPECT_GT(r.two_phase_latency(), 0.0);
  }
}

TEST(WorkloadTest, DealAllModeConservesTotal) {
  Rng rng(9);
  TraceGeneratorConfig tc;
  tc.num_blocks = 200;
  tc.target_total_txs = 200'000;
  Trace trace = generate_trace(tc, rng);
  const std::uint64_t total = trace.total_txs();
  WorkloadConfig wc;
  wc.num_committees = 20;
  wc.fill = ShardFill::kDealAllBlocks;
  const WorkloadGenerator gen(std::move(trace), wc);
  const auto workload = gen.epoch(rng);
  EXPECT_EQ(workload.total_txs(), total);
  for (const auto& r : workload.reports) EXPECT_GE(r.tx_count, 1u);
}

TEST(WorkloadTest, DealAllWithAsManyCommitteesAsBlocksIsAPermutation) {
  // With |I| == #blocks the first dealing round consumes every block, so
  // each shard is exactly one block — the shard counts are a permutation of
  // the block counts.
  Rng rng(12);
  TraceGeneratorConfig tc;
  tc.num_blocks = 25;
  tc.target_total_txs = 25'000;
  Trace trace = generate_trace(tc, rng);
  std::multiset<std::uint64_t> block_counts;
  for (const auto& b : trace.blocks) block_counts.insert(b.tx_count);
  WorkloadConfig wc;
  wc.num_committees = 25;
  wc.fill = ShardFill::kDealAllBlocks;
  const WorkloadGenerator gen(std::move(trace), wc);
  const auto workload = gen.epoch(rng);
  std::multiset<std::uint64_t> shard_counts;
  for (const auto& r : workload.reports) shard_counts.insert(r.tx_count);
  EXPECT_EQ(shard_counts, block_counts);
}

TEST(WorkloadTest, DealAllKeyedEpochsArePureAndDistinct) {
  Rng rng(13);
  TraceGeneratorConfig tc;
  tc.num_blocks = 120;
  tc.target_total_txs = 120'000;
  WorkloadConfig wc;
  wc.num_committees = 12;
  wc.fill = ShardFill::kDealAllBlocks;
  const WorkloadGenerator gen(generate_trace(tc, rng), wc);
  const auto e2 = gen.epoch_keyed(99, 2);
  (void)gen.epoch_keyed(99, 0);  // unrelated epochs must not perturb a replay
  const auto replay = gen.epoch_keyed(99, 2);
  ASSERT_EQ(replay.reports.size(), e2.reports.size());
  for (std::size_t i = 0; i < e2.reports.size(); ++i) {
    EXPECT_EQ(replay.reports[i].tx_count, e2.reports[i].tx_count);
    EXPECT_DOUBLE_EQ(replay.reports[i].formation_latency,
                     e2.reports[i].formation_latency);
  }
  // Different epoch indices re-deal: totals conserve, the split moves.
  const auto e3 = gen.epoch_keyed(99, 3);
  EXPECT_EQ(e3.total_txs(), e2.total_txs());
  bool any_diff = false;
  for (std::size_t i = 0; i < e2.reports.size(); ++i) {
    any_diff |= e3.reports[i].tx_count != e2.reports[i].tx_count;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, SubmitInstantMatchesInlineLatencySum) {
  // sample_submit_instant is the single shared sampling site for the
  // carry-over paths; it must consume exactly one two-phase sample and sum
  // it onto the window edge left-to-right (bitwise, so digests never move).
  Rng a(14);
  Rng b(14);
  WorkloadConfig wc;
  const double window_close = 1234.5;
  for (int i = 0; i < 100; ++i) {
    const double instant =
        mvcom::txn::sample_submit_instant(a, wc, window_close);
    const auto lat = sample_two_phase_latency(b, wc);
    EXPECT_EQ(instant, window_close + lat.formation + lat.consensus);
  }
  EXPECT_EQ(a(), b());  // engines stayed in lockstep
}

TEST(WorkloadTest, LatencyMarginalsMatchPaperModel) {
  // Formation ~ Exp(600 s); consensus ~ Erlang(3) with mean 54.5 s (§VI-A).
  Rng rng(10);
  WorkloadConfig wc;
  double formation_sum = 0.0;
  double consensus_sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto lat = sample_two_phase_latency(rng, wc);
    ASSERT_GE(lat.formation, 0.0);
    ASSERT_GE(lat.consensus, 0.0);
    formation_sum += lat.formation;
    consensus_sum += lat.consensus;
  }
  EXPECT_NEAR(formation_sum / n, 600.0, 8.0);
  EXPECT_NEAR(consensus_sum / n, 54.5, 0.8);
}

TEST(WorkloadTest, MaxLatencyIsDeadline) {
  Rng rng(11);
  TraceGeneratorConfig tc;
  tc.num_blocks = 40;
  tc.target_total_txs = 40'000;
  WorkloadConfig wc;
  wc.num_committees = 10;
  const WorkloadGenerator gen(generate_trace(tc, rng), wc);
  const auto workload = gen.epoch(rng);
  double expect_max = 0.0;
  for (const auto& r : workload.reports) {
    expect_max = std::max(expect_max, r.two_phase_latency());
  }
  EXPECT_DOUBLE_EQ(workload.max_latency(), expect_max);
}

TEST(WorkloadWindowTest, WindowsPartitionTheTraceTxs) {
  Rng rng(20);
  TraceGeneratorConfig tc;
  tc.num_blocks = 300;
  tc.target_total_txs = 300'000;
  Trace trace = generate_trace(tc, rng);
  const double span = trace.blocks.back().btime - trace.blocks.front().btime;
  const std::uint64_t total = trace.total_txs();

  WorkloadConfig wc;
  wc.num_committees = 10;
  const WorkloadGenerator gen(std::move(trace), wc);
  // Cover the whole trace with windows; TXs must partition exactly.
  const double window = span / 5.0 + 1.0;
  std::uint64_t seen = 0;
  for (std::size_t e = 0; e < 5; ++e) {
    const auto workload = gen.epoch_from_window(e, window, rng);
    ASSERT_EQ(workload.reports.size(), 10u);
    seen += workload.total_txs();
  }
  EXPECT_EQ(seen, total);
}

TEST(WorkloadWindowTest, QuietWindowYieldsEmptyShards) {
  Rng rng(21);
  TraceGeneratorConfig tc;
  tc.num_blocks = 10;
  tc.target_total_txs = 10'000;
  WorkloadConfig wc;
  wc.num_committees = 4;
  const WorkloadGenerator gen(generate_trace(tc, rng), wc);
  // A sliver window between two blocks usually catches nothing — counts
  // can be zero but latencies are still drawn.
  const auto workload = gen.epoch_from_window(0, 1e-6, rng);
  for (const auto& r : workload.reports) {
    EXPECT_GT(r.two_phase_latency(), 0.0);
  }
}

TEST(WorkloadWindowTest, WindowBeyondTraceThrows) {
  Rng rng(22);
  TraceGeneratorConfig tc;
  tc.num_blocks = 10;
  tc.target_total_txs = 10'000;
  WorkloadConfig wc;
  wc.num_committees = 4;
  const WorkloadGenerator gen(generate_trace(tc, rng), wc);
  EXPECT_THROW(gen.epoch_from_window(1000, 600.0, rng), std::out_of_range);
  EXPECT_THROW(gen.epoch_from_window(0, -5.0, rng), std::invalid_argument);
}

TEST(WorkloadTest, RejectsMoreCommitteesThanBlocks) {
  Rng rng(12);
  TraceGeneratorConfig tc;
  tc.num_blocks = 5;
  tc.target_total_txs = 5000;
  WorkloadConfig wc;
  wc.num_committees = 10;
  EXPECT_THROW(WorkloadGenerator(generate_trace(tc, rng), wc),
               std::invalid_argument);
}

}  // namespace
