// Tests for the SE scheduler's real parallel execution path
// (SeParams::parallel_execution): determinism contract against the serial
// path, the independent-chain bitwise guarantee at share_interval ==
// max_iterations, pool-backed online exploration, and a join/leave storm
// interleaved with parallel stepping (the ThreadSanitizer workload run by
// tools/run_tsan_tests.sh).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string_view>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "mvcom/online.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

using mvcom::core::Committee;
using mvcom::core::EpochInstance;
using mvcom::core::Selection;
using mvcom::core::SeParams;
using mvcom::core::SeResult;
using mvcom::core::SeScheduler;
using mvcom::core::SeTransition;

EpochInstance random_instance(std::uint64_t seed, std::size_t n = 24,
                              std::size_t n_min = 4) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Committee c{static_cast<std::uint32_t>(i), 500 + rng.below(1500),
                600.0 + rng.uniform(0.0, 900.0)};
    total += c.txs;
    committees.push_back(c);
  }
  return EpochInstance(std::move(committees), 1.5, (total * 7) / 10, n_min);
}

void expect_identical(const SeResult& serial, const SeResult& parallel) {
  EXPECT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(serial.converged, parallel.converged);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_DOUBLE_EQ(serial.utility, parallel.utility);
  EXPECT_DOUBLE_EQ(serial.valuable_degree, parallel.valuable_degree);
  ASSERT_EQ(serial.utility_trace.size(), parallel.utility_trace.size());
  for (std::size_t i = 0; i < serial.utility_trace.size(); ++i) {
    const double a = serial.utility_trace[i];
    const double b = parallel.utility_trace[i];
    if (std::isnan(a)) {
      EXPECT_TRUE(std::isnan(b)) << "iteration " << i;
    } else {
      EXPECT_DOUBLE_EQ(a, b) << "iteration " << i;
    }
  }
}

SeResult run_once(const EpochInstance& inst, SeParams params, bool parallel,
                  std::uint64_t seed) {
  params.parallel_execution = parallel;
  SeScheduler scheduler(inst, params, seed);
  return scheduler.run();
}

TEST(SeParallelTest, IndependentChainsAreBitwiseEqualToSerial) {
  // share_interval == max_iterations: the Γ chains never communicate, so
  // each explorer's trajectory depends only on its private forked Rng —
  // serial and pool execution must agree bit for bit.
  const EpochInstance inst = random_instance(1);
  SeParams params;
  params.threads = 4;
  params.max_iterations = 600;
  params.share_interval = params.max_iterations;
  params.convergence_window = params.max_iterations + 1;  // fixed budget
  expect_identical(run_once(inst, params, false, 99),
                   run_once(inst, params, true, 99));
}

TEST(SeParallelTest, SharingAtBarriersPreservesBitwiseEquality) {
  // With cooperation enabled the incumbent exchange runs under the barrier
  // at the same iteration numbers as the serial path, so results still
  // match exactly.
  const EpochInstance inst = random_instance(2);
  SeParams params;
  params.threads = 4;
  params.max_iterations = 900;
  params.share_interval = 50;
  params.convergence_window = params.max_iterations + 1;
  expect_identical(run_once(inst, params, false, 7),
                   run_once(inst, params, true, 7));
}

TEST(SeParallelTest, ConvergenceDetectionMatchesSerial) {
  const EpochInstance inst = random_instance(3);
  SeParams params;
  params.threads = 3;
  params.max_iterations = 5000;
  params.share_interval = 100;
  params.convergence_window = 300;
  const SeResult serial = run_once(inst, params, false, 21);
  const SeResult parallel = run_once(inst, params, true, 21);
  EXPECT_TRUE(serial.converged);
  expect_identical(serial, parallel);
}

TEST(SeParallelTest, TimerRaceKernelAlsoMatches) {
  const EpochInstance inst = random_instance(4, 16, 3);
  SeParams params;
  params.threads = 4;
  params.transition = SeTransition::kTimerRace;
  params.max_iterations = 800;
  params.share_interval = 40;
  params.convergence_window = params.max_iterations + 1;
  expect_identical(run_once(inst, params, false, 13),
                   run_once(inst, params, true, 13));
}

TEST(SeParallelTest, JoinLeaveStormStaysFeasibleUnderParallelStepping) {
  // The TSan workload: dynamics (add/remove) interleaved with pool-driven
  // stepping. Every observed selection must respect capacity and N_min of
  // the instance at observation time.
  const EpochInstance inst = random_instance(5, 16, 2);
  SeParams params;
  params.threads = 4;
  params.parallel_execution = true;
  params.share_interval = 25;
  SeScheduler scheduler(inst, params, 31);
  mvcom::common::Rng rng(77);
  std::uint32_t next_id = 1000;
  for (int round = 0; round < 40; ++round) {
    scheduler.advance(30);
    if (round % 3 == 0) {
      scheduler.add_committee(
          {next_id++, 500 + rng.below(1500), 600.0 + rng.uniform(0.0, 900.0)});
    } else if (scheduler.instance().size() > 6) {
      // Remove a committee that is currently selected when possible, so the
      // trimmed-space re-initialization (Fig. 7) really runs.
      const Selection x = scheduler.current_selection();
      std::uint32_t victim = scheduler.instance().committees().front().id;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (x[i]) {
          victim = scheduler.instance().committees()[i].id;
          break;
        }
      }
      scheduler.remove_committee(victim);
    }
    for (int i = 0; i < 5; ++i) scheduler.step();  // single-step path too
    const Selection x = scheduler.current_selection();
    if (x.empty()) continue;
    const auto st = scheduler.instance().stats(x);
    ASSERT_LE(st.txs, scheduler.instance().capacity()) << "round " << round;
    ASSERT_GE(st.chosen, scheduler.instance().n_min()) << "round " << round;
  }
}

TEST(SeParallelTest, OnlineSchedulerExploresThroughThePool) {
  mvcom::core::OnlineSchedulerConfig config;
  config.alpha = 1.5;
  config.capacity = 4000;
  config.expected_committees = 10;
  config.se.threads = 4;
  config.se.parallel_execution = true;
  mvcom::core::OnlineCommitteeScheduler scheduler(config, 11);
  mvcom::common::Rng rng(5);
  for (std::uint32_t i = 0; i < 8; ++i) {
    mvcom::txn::ShardReport r;
    r.committee_id = i;
    r.tx_count = 500 + rng.below(400);
    r.formation_latency = 650.0 + 20.0 * i;
    r.consensus_latency = 0.0;
    scheduler.on_report(r);
  }
  scheduler.on_failure(2);
  scheduler.explore(1000);
  const auto decision = scheduler.decide();
  ASSERT_TRUE(decision.feasible);
  EXPECT_LE(decision.permitted_txs, config.capacity);
  for (const std::uint32_t id : decision.permitted_ids) EXPECT_NE(id, 2u);
}

// --- Determinism matrix (the 50k-scaling PR's correctness gate) ---------
//
// Identical seeds must yield bitwise-identical schedules across execution
// shapes: serial vs pool-backed, and pool worker counts {1, 2, 8} (via
// SeParams::max_pool_workers — workers claim whole explorers between
// barriers, so the worker count can change wall-clock but never results).
// Exercised at I=50 (full chain family) and I=5000 (strided family, the
// scale-tier code path).
//
// The same runs also feed a digest file when MVCOM_DETERMINISM_DIGEST is
// set: SHA-256 over the best selection, the utility bits, and the full
// utility trace. CI runs this test in MVCOM_OBS=ON and OBS=OFF builds and
// diffs the two digest files, extending the bitwise guarantee across
// observability configurations (which no single binary can check alone).

std::string result_digest(const SeResult& r) {
  mvcom::crypto::Sha256 h;
  h.update(std::string_view(reinterpret_cast<const char*>(r.best.data()),
                            r.best.size()));
  const auto absorb_double = [&h](double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    h.update(std::string_view(reinterpret_cast<const char*>(&bits),
                              sizeof bits));
  };
  absorb_double(r.utility);
  for (const double u : r.utility_trace) {
    absorb_double(std::isnan(u) ? 0.0 : u);  // canonicalize NaN payloads
  }
  return mvcom::crypto::to_hex(h.finalize());
}

TEST(SeDeterminismMatrix, WorkerCountsAndSerialAgreeBitwise) {
  const char* digest_path = std::getenv("MVCOM_DETERMINISM_DIGEST");
  std::ofstream digest_out;
  if (digest_path != nullptr && *digest_path != '\0') {
    digest_out.open(digest_path, std::ios::trunc);
    ASSERT_TRUE(digest_out) << "cannot open " << digest_path;
  }

  for (const std::size_t icount : {std::size_t{50}, std::size_t{5000}}) {
    SCOPED_TRACE("I=" + std::to_string(icount));
    const EpochInstance inst =
        random_instance(icount, icount, icount / 10);
    SeParams params;
    params.threads = 4;
    params.max_iterations = icount <= 50 ? 400 : 40;
    params.share_interval = 10;
    params.convergence_window = params.max_iterations + 1;
    params.max_family = 96;  // forces the strided family at I=5000

    const SeResult serial = run_once(inst, params, false, 99);
    for (const std::size_t workers : {1u, 2u, 8u}) {
      SCOPED_TRACE("max_pool_workers=" + std::to_string(workers));
      params.max_pool_workers = workers;
      const SeResult pooled = run_once(inst, params, true, 99);
      expect_identical(serial, pooled);
    }
    if (digest_out.is_open()) {
      digest_out << "I=" << icount << " " << result_digest(serial) << "\n";
    }
  }
}

TEST(SeParallelTest, GammaOneIgnoresParallelFlag) {
  // Γ=1 has nothing to fan out; the flag must be a harmless no-op.
  const EpochInstance inst = random_instance(6, 12, 2);
  SeParams params;
  params.threads = 1;
  params.max_iterations = 400;
  params.convergence_window = params.max_iterations + 1;
  expect_identical(run_once(inst, params, false, 3),
                   run_once(inst, params, true, 3));
}

}  // namespace
