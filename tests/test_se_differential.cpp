// Differential-correctness harness for the SE epoch engine (the gate behind
// the 50k-committee scaling work): 1000 deterministic randomized small
// instances are solved by SE and by the two exact baselines, and the three
// answers are cross-checked.
//
//  * Exhaustive (2^I enumeration) is the ground truth on every instance —
//    varied α, Ĉ, N_min, zero-TX committees, infeasible combinations, and
//    the degenerate t = l_i epoch where every age Π_i is zero.
//  * DynamicProgramming with DpObjective::kUtility and N_min = 0 is exact
//    on an unscaled table, so the two exact baselines must agree on U to
//    the bit, not just to a tolerance.
//  * SE must (a) never emit an infeasible selection, (b) agree with the
//    ground truth on *whether* a solution exists, and (c) land within a
//    small tolerance of the optimum, hitting it exactly on the overwhelming
//    majority of instances.
//
// One subtlety: the SE solution family maintains cardinalities n ≥ 1, so
// when N_min = 0 its notion of "feasible" is "a non-empty feasible
// selection exists" (the empty selection needs no scheduler). The reference
// therefore uses N'_min = max(N_min, 1); the exact-baseline bitwise check
// runs at N_min = 0 where DP-U is provably optimal.
//
// The second half is the swap-delta property test: randomized swap
// sequences composed as incremental deltas must equal the from-scratch
// utility to a tight ULP bound — both at the SwapSet level and through the
// scheduler's own bookkeeping across join/leave rebinds.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "baselines/dynamic_programming.hpp"
#include "baselines/exhaustive.hpp"
#include "common/rng.hpp"
#include "mvcom/se_scheduler.hpp"
#include "mvcom/swap_set.hpp"

namespace {

using mvcom::baselines::DpObjective;
using mvcom::baselines::DpParams;
using mvcom::baselines::DynamicProgramming;
using mvcom::baselines::Exhaustive;
using mvcom::common::Rng;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;
using mvcom::core::Selection;
using mvcom::core::SeParams;
using mvcom::core::SeScheduler;
using mvcom::core::SeTransition;
using mvcom::core::SwapSet;

/// Distance in representable doubles between two finite same-sign-ish
/// values — the natural "bitwise closeness" metric for accumulated swap
/// deltas. Monotone bit trick: map the IEEE-754 ordering onto the integers.
std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;  // covers +0/−0
  const auto key = [](double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    return (bits & (std::uint64_t{1} << 63)) != 0
               ? ~bits
               : bits | (std::uint64_t{1} << 63);
  };
  const std::uint64_t ka = key(a);
  const std::uint64_t kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

struct DiffCase {
  std::vector<Committee> committees;
  double alpha = 1.5;
  std::uint64_t capacity = 0;
  std::size_t n_min = 0;
};

/// One randomized small instance. Deliberately adversarial mix: zero-TX
/// committees, capacities from "nothing fits" to "everything fits", N_min
/// from 0 to past |I| (infeasible), and all-equal latencies so every
/// committee sits exactly at the deadline (t = l_i, Π_i = 0).
DiffCase random_case(std::uint64_t seed) {
  Rng rng(seed);
  DiffCase c;
  const std::size_t n = 3 + rng.below(12);  // 3..14 — exhaustive stays honest
  constexpr double kAlphas[] = {0.5, 1.0, 1.5, 3.0};
  c.alpha = kAlphas[rng.below(4)];
  const bool degenerate = rng.below(8) == 0;  // all l_i equal → t = l_i ∀i
  const double shared_latency = 600.0 + rng.uniform(0.0, 900.0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Committee m;
    m.id = static_cast<std::uint32_t>(i);
    m.txs = rng.below(10) == 0 ? 0 : 50 + rng.below(1950);  // zero-TX shards
    m.latency = degenerate ? shared_latency : 600.0 + rng.uniform(0.0, 900.0);
    total += m.txs;
    c.committees.push_back(m);
  }
  // Capacity tiers: starving, binding, loose, non-binding.
  constexpr std::uint64_t kNum[] = {0, 3, 6, 9, 11};
  c.capacity = total * kNum[rng.below(5)] / 10;
  c.n_min = rng.below(n + 3);  // may exceed |I| → genuinely infeasible
  return c;
}

mvcom::core::SeResult solve_se(const EpochInstance& instance,
                               std::uint64_t seed) {
  SeParams params;
  params.threads = 8;  // β=2 chains hill-climb; optimum coverage is Γ-starts
  params.max_iterations = 2000;
  params.convergence_window = params.max_iterations + 1;  // fixed budget
  params.transition =
      seed % 2 == 0 ? SeTransition::kChainParallel : SeTransition::kTimerRace;
  SeScheduler scheduler(instance, params, seed);
  return scheduler.run();
}

// The acceptance criterion of the scaling PR: 1000 randomized instances,
// zero feasibility violations, SE within tolerance of the exact optimum.
TEST(SeDifferentialTest, ThousandRandomInstancesAgainstExactBaselines) {
  constexpr std::uint64_t kCases = 1000;
  std::size_t feasible_cases = 0;
  std::size_t infeasible_cases = 0;
  std::size_t exact_hits = 0;
  std::size_t near_hits = 0;
  double worst_gap = 0.0;

  for (std::uint64_t seed = 1; seed <= kCases; ++seed) {
    SCOPED_TRACE("case seed " + std::to_string(seed));
    const DiffCase c = random_case(seed);
    const EpochInstance instance(c.committees, c.alpha, c.capacity, c.n_min);

    // Ground truth over non-empty selections (see the header comment).
    const EpochInstance reference(c.committees, c.alpha, c.capacity,
                                  std::max<std::size_t>(c.n_min, 1));
    Exhaustive exact;
    const auto truth = exact.solve(reference);

    const auto se = solve_se(instance, seed);
    ASSERT_EQ(se.feasible, truth.feasible);
    if (!truth.feasible) {
      ++infeasible_cases;
      EXPECT_TRUE(se.best.empty());
      continue;
    }
    ++feasible_cases;

    // (a) Hard feasibility: the selection SE emits must satisfy Eq. (3)
    // and Eq. (4) of the *original* instance. Zero violations tolerated.
    ASSERT_EQ(se.best.size(), instance.size());
    const auto st = instance.stats(se.best);
    ASSERT_LE(st.txs, instance.capacity());
    ASSERT_GE(st.chosen, instance.n_min());
    ASSERT_GE(st.chosen, std::size_t{1});

    // (b) The reported utility is the selection's true utility.
    EXPECT_LE(ulp_distance(se.utility, instance.utility(se.best)), 16u);

    // (c) Near-optimality. At β = 2 an uphill-only chain can be trapped by
    // adversarial optima whose escape needs a large-downhill move (e.g.
    // packing a negative-gain zero-TX filler to meet N_min), so the bound
    // is two-tier: every case within 10% of the optimum, the overwhelming
    // majority within 2%, and ≥95% exactly optimal.
    const double opt = truth.utility;
    const double gap = opt - se.utility;
    EXPECT_LE(gap, 1e-9 + 0.10 * std::fabs(opt))
        << "SE " << se.utility << " vs optimum " << opt;
    worst_gap = std::max(worst_gap, gap);
    if (gap <= 1e-9 + 0.02 * std::fabs(opt)) ++near_hits;
    if (gap <= 1e-9 + 1e-12 * std::fabs(opt)) ++exact_hits;
  }

  // The mix must actually exercise both regimes, and SE should hit the
  // exact optimum on the overwhelming majority of these small instances.
  EXPECT_GE(feasible_cases, kCases / 2);
  EXPECT_GE(infeasible_cases, kCases / 20);
  EXPECT_GE(near_hits, feasible_cases * 99 / 100)
      << "within-2% " << near_hits << "/" << feasible_cases;
  EXPECT_GE(exact_hits, feasible_cases * 95 / 100)
      << "exact " << exact_hits << "/" << feasible_cases
      << ", worst gap " << worst_gap;
}

// DP with the exact Eq.-(2) objective and an unscaled table is provably
// optimal at N_min = 0 — it must agree with exhaustive enumeration on U to
// the bit (both report instance.utility() of an optimal selection; ties
// between distinct optima are measure-zero under continuous latencies).
TEST(SeDifferentialTest, ExactBaselinesAgreeBitwise) {
  constexpr std::uint64_t kCases = 200;
  for (std::uint64_t seed = 1; seed <= kCases; ++seed) {
    SCOPED_TRACE("case seed " + std::to_string(seed));
    DiffCase c = random_case(seed);
    c.n_min = 0;  // DP-U's exactness precondition
    const EpochInstance instance(c.committees, c.alpha, c.capacity, 0);
    ASSERT_LE(instance.capacity(), DpParams{}.max_buckets)
        << "capacity must stay below the FPTAS rounding threshold";

    Exhaustive exact;
    DynamicProgramming dp_u(DpParams{.objective = DpObjective::kUtility});
    const auto a = exact.solve(instance);
    const auto b = dp_u.solve(instance);
    ASSERT_EQ(a.feasible, b.feasible);
    if (!a.feasible) continue;
    // Bitwise agreement: compare the representations, not a tolerance.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.utility),
              std::bit_cast<std::uint64_t>(b.utility))
        << "exhaustive " << a.utility << " vs DP-U " << b.utility;
  }
}

// Satellite property: composing random swap deltas incrementally must match
// the from-scratch utility to a tight ULP bound. 100 instances × 300 swaps.
TEST(SeDifferentialTest, SwapDeltaCompositionMatchesRecompute) {
  constexpr std::size_t kInstances = 100;
  constexpr std::size_t kSwaps = 300;
  for (std::uint64_t seed = 1; seed <= kInstances; ++seed) {
    SCOPED_TRACE("instance seed " + std::to_string(seed));
    Rng rng(seed * 7919);
    const std::size_t n = 32 + rng.below(64);
    std::vector<Committee> committees;
    for (std::size_t i = 0; i < n; ++i) {
      committees.push_back({static_cast<std::uint32_t>(i),
                            50 + rng.below(1950),
                            600.0 + rng.uniform(0.0, 900.0)});
    }
    const EpochInstance instance(committees, 1.5, ~std::uint64_t{0} >> 1, 0);

    Selection x(n, 0);
    for (std::size_t i = 0; i < n / 2; ++i) x[i] = 1;
    SwapSet set(x);
    double utility = instance.utility(x);
    for (std::size_t s = 0; s < kSwaps; ++s) {
      const std::uint32_t out = set.sample_selected(rng);
      const std::uint32_t in = set.sample_unselected(rng);
      utility += instance.swap_delta(out, in);
      set.swap(out, in);
    }
    Selection final_x(n, 0);
    set.write_selection(final_x);
    const double scratch = instance.utility(final_x);
    EXPECT_LE(ulp_distance(utility, scratch), 512u)
        << "incremental " << utility << " vs from-scratch " << scratch;
  }
}

// The same invariant through the scheduler's own bookkeeping, across
// join/leave rebinds: the utility SE carried incrementally through every
// accepted swap and every Fig.-7 rebind translation must match a
// from-scratch recomputation of the selection it reports.
TEST(SeDifferentialTest, IncrementalUtilitySurvivesJoinLeaveRebinds) {
  Rng rng(424242);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    Committee c{static_cast<std::uint32_t>(i), 500 + rng.below(1500),
                600.0 + rng.uniform(0.0, 900.0)};
    total += c.txs;
    committees.push_back(c);
  }
  const EpochInstance instance(committees, 1.5, (total * 7) / 10, 3);

  SeParams params;
  params.threads = 3;
  params.share_interval = 25;
  SeScheduler scheduler(instance, params, 9);
  std::uint32_t next_id = 5000;
  for (int round = 0; round < 60; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    scheduler.advance(40);
    if (round % 4 == 0) {
      scheduler.add_committee(
          {next_id++, 500 + rng.below(1500), 600.0 + rng.uniform(0.0, 900.0)});
    } else if (round % 4 == 2 && scheduler.instance().size() > 8) {
      // Prefer evicting a selected committee so the rebind really has to
      // translate live solutions, not just shrink the index space.
      const Selection x = scheduler.current_selection();
      std::uint32_t victim = scheduler.instance().committees().front().id;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (x[i]) {
          victim = scheduler.instance().committees()[i].id;
          break;
        }
      }
      scheduler.remove_committee(victim);
    }
    const double tracked = scheduler.current_utility();
    const Selection x = scheduler.current_selection();
    ASSERT_EQ(std::isnan(tracked), x.empty());
    if (x.empty()) continue;
    const double scratch = scheduler.instance().utility(x);
    EXPECT_LE(ulp_distance(tracked, scratch), 512u)
        << "tracked " << tracked << " vs from-scratch " << scratch;
  }
}

}  // namespace
