// Tests for EpochSupervisor — the fault-tolerant layer around the online
// scheduler: verified admission (quarantine/strike/ban/equivocation), the
// DES-driven heartbeat failure detector, the graceful-degradation decide()
// ladder, and the runtime Theorem-2 perturbation accounting.

#include "mvcom/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/theory.hpp"
#include "common/rng.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "sharding/verification.hpp"
#include "sim/simulator.hpp"

namespace {

using mvcom::core::Admission;
using mvcom::core::DecisionTier;
using mvcom::core::EpochSupervisor;
using mvcom::core::InfeasibleReason;
using mvcom::core::SupervisorConfig;
using mvcom::sharding::build_submission;
using mvcom::sharding::ShardSubmission;
using mvcom::txn::ShardReport;

/// An honest, verification-passing submission carrying `txs` transactions.
ShardSubmission honest(std::uint32_t id, std::uint64_t txs) {
  return build_submission(id, {{"shard-" + std::to_string(id), txs}});
}

/// The same committee's shard with the claimed count inflated — the
/// commitment still binds the honest entries, so verification must fail.
ShardSubmission inflated(std::uint32_t id, std::uint64_t txs,
                         std::uint64_t claimed) {
  ShardSubmission s = honest(id, txs);
  s.claimed_tx_count = claimed;
  return s;
}

SupervisorConfig config(std::size_t expected = 10,
                        std::uint64_t capacity = 4000) {
  SupervisorConfig c;
  c.scheduler.alpha = 1.5;
  c.scheduler.capacity = capacity;
  c.scheduler.expected_committees = expected;
  c.scheduler.se.threads = 2;
  return c;
}

bool permits(const mvcom::core::SupervisedDecision& d, std::uint32_t id) {
  return std::find(d.decision.permitted_ids.begin(),
                   d.decision.permitted_ids.end(),
                   id) != d.decision.permitted_ids.end();
}

bool reports_contain(const EpochSupervisor& sup, std::uint32_t id) {
  for (const ShardReport& r : sup.scheduler().reports()) {
    if (r.committee_id == id) return true;
  }
  return false;
}

TEST(SupervisorAdmissionTest, HonestSubmissionsAreAdmitted) {
  EpochSupervisor sup(config(), 1);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sup.on_submission(honest(i, 600), 700.0 + i, 50.0),
              Admission::kAdmitted);
  }
  EXPECT_EQ(sup.scheduler().arrived(), 8u);
  const auto h = sup.health(3);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->admitted);
  EXPECT_EQ(h->verified_txs, 600u);
  EXPECT_EQ(h->strikes, 0);
}

TEST(SupervisorAdmissionTest, InflatedClaimIsQuarantinedAndNeverAdmitted) {
  EpochSupervisor sup(config(), 2);
  for (std::uint32_t i = 0; i < 7; ++i) {
    sup.on_submission(honest(i, 600), 700.0, 50.0);
  }
  const std::uint64_t before = sup.scheduler().total_reported_txs();
  // The issue's acceptance criterion: the inflated s_i must never enter the
  // EpochInstance.
  EXPECT_EQ(sup.on_submission(inflated(7, 600, 2400), 700.0, 50.0),
            Admission::kQuarantined);
  EXPECT_FALSE(reports_contain(sup, 7));
  EXPECT_EQ(sup.scheduler().total_reported_txs(), before);
  const auto h = sup.health(7);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->quarantined);
  EXPECT_FALSE(h->admitted);
  EXPECT_EQ(h->strikes, 1);
  EXPECT_FALSE(permits(sup.decide(), 7));
  const auto quarantined = sup.quarantined_ids();
  EXPECT_NE(std::find(quarantined.begin(), quarantined.end(), 7u),
            quarantined.end());
}

TEST(SupervisorAdmissionTest, TamperedRootIsQuarantined) {
  EpochSupervisor sup(config(), 3);
  ShardSubmission s = honest(0, 600);
  s.claimed_root[0] ^= 0xff;  // break the commitment, keep the count
  EXPECT_EQ(sup.on_submission(s, 700.0, 50.0), Admission::kQuarantined);
  EXPECT_FALSE(reports_contain(sup, 0));
}

TEST(SupervisorAdmissionTest, HonestResubmissionReadmitsQuarantined) {
  EpochSupervisor sup(config(), 4);
  EXPECT_EQ(sup.on_submission(inflated(0, 600, 1200), 700.0, 50.0),
            Admission::kQuarantined);
  EXPECT_EQ(sup.on_submission(honest(0, 600), 700.0, 50.0),
            Admission::kReadmitted);
  EXPECT_TRUE(reports_contain(sup, 0));
  const auto h = sup.health(0);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->admitted);
  EXPECT_FALSE(h->quarantined);
  EXPECT_EQ(h->strikes, 1);  // strikes persist across re-admission
}

TEST(SupervisorAdmissionTest, StrikeBudgetExhaustionBans) {
  EpochSupervisor sup(config(), 5);  // max_strikes = 3
  EXPECT_EQ(sup.on_submission(inflated(0, 600, 1200), 700.0, 50.0),
            Admission::kQuarantined);
  EXPECT_EQ(sup.on_submission(inflated(0, 600, 1300), 700.0, 50.0),
            Admission::kQuarantined);
  EXPECT_EQ(sup.on_submission(inflated(0, 600, 1400), 700.0, 50.0),
            Admission::kBanned);
  // Once banned, even an honest submission is refused for the epoch.
  EXPECT_EQ(sup.on_submission(honest(0, 600), 700.0, 50.0),
            Admission::kBanned);
  EXPECT_FALSE(reports_contain(sup, 0));
  const auto banned = sup.banned_ids();
  ASSERT_EQ(banned.size(), 1u);
  EXPECT_EQ(banned[0], 0u);
  // Banned ids are not double-listed as quarantined.
  EXPECT_TRUE(sup.quarantined_ids().empty());
}

TEST(SupervisorAdmissionTest, EquivocationEvictsAndAllowsHonestReturn) {
  EpochSupervisor sup(config(), 6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    sup.on_submission(honest(i, 600), 700.0, 50.0);
  }
  // A second, *verification-passing* submission binding a different s_i:
  // both commitments are internally consistent, so one of them lies about
  // the actual shard. The supervisor must evict and strike.
  EXPECT_EQ(sup.on_submission(honest(3, 900), 700.0, 50.0),
            Admission::kQuarantined);
  EXPECT_FALSE(reports_contain(sup, 3));
  // Re-asserting a verified report is an honest return through the recovery
  // door (listening may have stopped meanwhile).
  EXPECT_EQ(sup.on_submission(honest(3, 600), 700.0, 50.0),
            Admission::kReadmitted);
  EXPECT_TRUE(reports_contain(sup, 3));
}

TEST(SupervisorAdmissionTest, IdenticalResubmissionIsDuplicate) {
  EpochSupervisor sup(config(), 7);
  EXPECT_EQ(sup.on_submission(honest(0, 600), 700.0, 50.0),
            Admission::kAdmitted);
  EXPECT_EQ(sup.on_submission(honest(0, 600), 710.0, 60.0),
            Admission::kDuplicate);
  EXPECT_EQ(sup.scheduler().arrived(), 1u);
  EXPECT_EQ(sup.health(0)->strikes, 0);  // duplicates are not equivocation
}

TEST(SupervisorAdmissionTest, LateArrivalAfterNmaxIsRefused) {
  EpochSupervisor sup(config(10), 8);  // N_max = 8
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 600), 700.0, 50.0);
  }
  EXPECT_FALSE(sup.scheduler().listening());
  EXPECT_EQ(sup.on_submission(honest(8, 600), 700.0, 50.0),
            Admission::kRefused);
  EXPECT_FALSE(sup.health(8)->admitted);
}

TEST(SupervisorFailureTest, ManualFailureRecordsTheorem2Accounting) {
  EpochSupervisor sup(config(), 9);
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 700), 650.0 + i * 15.0, 40.0);
  }
  sup.explore(500);
  sup.on_failure(2);
  EXPECT_FALSE(reports_contain(sup, 2));
  ASSERT_EQ(sup.failures().size(), 1u);
  const auto& record = sup.failures()[0];
  EXPECT_EQ(record.committee_id, 2u);
  EXPECT_GT(record.utility_before, 0.0);
  EXPECT_GT(record.utility_after, 0.0);
  EXPECT_DOUBLE_EQ(
      record.perturbation_bound,
      mvcom::analysis::failure_perturbation_bound(record.utility_after));
  EXPECT_TRUE(record.within_bound);
  const auto d = sup.decide();
  EXPECT_TRUE(d.theorem2_respected);
  EXPECT_DOUBLE_EQ(d.perturbation_bound, record.perturbation_bound);
  EXPECT_FALSE(permits(d, 2));
}

TEST(SupervisorFailureTest, RecoveryReadmitsLastVerifiedReport) {
  EpochSupervisor sup(config(), 10);
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 700), 650.0, 40.0);
  }
  sup.on_failure(2);
  EXPECT_TRUE(sup.on_recovery(2));
  EXPECT_TRUE(reports_contain(sup, 2));
  EXPECT_TRUE(sup.health(2)->admitted);
  EXPECT_EQ(sup.recoveries_detected(), 1u);
}

TEST(SupervisorFailureTest, RecoveryOfUnknownOrLiveIdIsRefused) {
  EpochSupervisor sup(config(), 11);
  sup.on_submission(honest(0, 700), 650.0, 40.0);
  EXPECT_FALSE(sup.on_recovery(99));  // never seen
  EXPECT_FALSE(sup.on_recovery(0));   // alive, never failed
  EXPECT_EQ(sup.recoveries_detected(), 0u);
}

TEST(SupervisorFailureTest, QuarantinedCommitteeDoesNotRecoverByPing) {
  EpochSupervisor sup(config(), 12);
  for (std::uint32_t i = 0; i < 6; ++i) {
    sup.on_submission(honest(i, 700), 650.0, 40.0);
  }
  // Equivocate, then fail: the committee is both evicted and distrusted.
  sup.on_submission(honest(3, 900), 650.0, 40.0);
  sup.on_failure(3);
  // Recovery clears `failed` but must NOT re-admit a quarantined report.
  EXPECT_FALSE(sup.on_recovery(3));
  EXPECT_FALSE(reports_contain(sup, 3));
  EXPECT_FALSE(sup.health(3)->failed);
  EXPECT_TRUE(sup.health(3)->quarantined);
}

TEST(SupervisorFailureTest, FailureBeforeAnySubmissionRecordsNoDip) {
  EpochSupervisor sup(config(), 13);
  sup.on_failure(5);  // detector may fire before the committee submits
  EXPECT_EQ(sup.failures_detected(), 1u);
  EXPECT_TRUE(sup.failures().empty());  // nothing was contributing
}

TEST(SupervisorDecideTest, ConvergedSeSelectionIsTierOne) {
  EpochSupervisor sup(config(10, 4000), 14);
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 700), 650.0 + i * 15.0, 40.0);
  }
  ASSERT_TRUE(sup.scheduler().bootstrapped());  // 8×700 > 4000 binds
  sup.explore(2000);
  const auto d = sup.decide();
  ASSERT_TRUE(d.decision.feasible);
  EXPECT_EQ(d.tier, DecisionTier::kSeBest);
  EXPECT_EQ(d.reason, InfeasibleReason::kNone);
  EXPECT_LE(d.decision.permitted_txs, 4000u);
  EXPECT_GE(d.decision.permitted_ids.size(), sup.scheduler().n_min());
}

TEST(SupervisorDecideTest, SlackCapacityFallsThroughToGreedyTiers) {
  EpochSupervisor sup(config(10, 1'000'000), 15);
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 700), 650.0, 40.0);
  }
  EXPECT_FALSE(sup.scheduler().bootstrapped());  // capacity never binds
  const auto d = sup.decide();
  ASSERT_TRUE(d.decision.feasible);
  EXPECT_NE(d.tier, DecisionTier::kSeBest);
  EXPECT_NE(d.tier, DecisionTier::kInfeasible);
  EXPECT_EQ(d.decision.permitted_ids.size(), 8u);
}

TEST(SupervisorDecideTest, NoSubmissionsReportsNoLiveCommittees) {
  EpochSupervisor sup(config(), 16);
  const auto d = sup.decide();
  EXPECT_FALSE(d.decision.feasible);
  EXPECT_EQ(d.tier, DecisionTier::kInfeasible);
  EXPECT_EQ(d.reason, InfeasibleReason::kNoLiveCommittees);
}

TEST(SupervisorDecideTest, TooFewLiveCommitteesReportsNminUnreachable) {
  EpochSupervisor sup(config(10, 4000), 17);  // N_min = 5
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 700), 650.0, 40.0);
  }
  for (std::uint32_t i = 0; i < 4; ++i) sup.on_failure(i);
  const auto d = sup.decide();
  EXPECT_FALSE(d.decision.feasible);
  EXPECT_EQ(d.tier, DecisionTier::kInfeasible);
  EXPECT_EQ(d.reason, InfeasibleReason::kNminUnreachable);
}

TEST(SupervisorDecideTest, OverCapacityNminReportsCapacityInsufficient) {
  // N_min = 2 but even the two shards together exceed the capacity.
  EpochSupervisor sup(config(4, 600), 18);
  sup.on_submission(honest(0, 500), 650.0, 40.0);
  sup.on_submission(honest(1, 500), 660.0, 40.0);
  const auto d = sup.decide();
  EXPECT_FALSE(d.decision.feasible);
  EXPECT_EQ(d.tier, DecisionTier::kInfeasible);
  EXPECT_EQ(d.reason, InfeasibleReason::kCapacityInsufficient);
}

TEST(SupervisorDecideTest, LadderNeverInfeasibleWhileWitnessExists) {
  // Interleave failures and recoveries; whenever the exact feasibility
  // witness exists the ladder must produce a feasible decision.
  EpochSupervisor sup(config(10, 4000), 19);
  mvcom::common::Rng rng(19);
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 400 + rng.below(500)), 650.0, 40.0);
  }
  for (int step = 0; step < 40; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.below(8));
    if (rng.bernoulli(0.5)) {
      sup.on_failure(id);
    } else {
      sup.on_recovery(id);
    }
    sup.explore(50);
    const auto d = sup.decide();
    const bool witness = mvcom::core::feasible_selection_exists(
        sup.scheduler().reports(), 4000, sup.scheduler().n_min());
    EXPECT_EQ(d.decision.feasible, witness) << "step " << step;
  }
}

TEST(FeasibleSelectionExistsTest, ExactBoundaryAndOverflowSafety) {
  std::vector<ShardReport> reports;
  for (std::uint32_t i = 0; i < 4; ++i) {
    ShardReport r;
    r.committee_id = i;
    r.tx_count = 100 * (i + 1u);  // 100, 200, 300, 400
    reports.push_back(r);
  }
  // The 2 smallest (100+200=300) define the exact boundary.
  EXPECT_TRUE(mvcom::core::feasible_selection_exists(reports, 300, 2));
  EXPECT_FALSE(mvcom::core::feasible_selection_exists(reports, 299, 2));
  EXPECT_FALSE(mvcom::core::feasible_selection_exists(reports, 10'000, 5));
  EXPECT_TRUE(mvcom::core::feasible_selection_exists(reports, 0, 0));
  EXPECT_TRUE(mvcom::core::feasible_selection_exists({}, 0, 0));
  // Accumulation must not wrap: two near-max shards vs max capacity.
  std::vector<ShardReport> huge(2);
  huge[0].tx_count = std::numeric_limits<std::uint64_t>::max() - 1;
  huge[1].tx_count = std::numeric_limits<std::uint64_t>::max() - 1;
  EXPECT_FALSE(mvcom::core::feasible_selection_exists(
      huge, std::numeric_limits<std::uint64_t>::max(), 2));
}

TEST(SupervisorCarryTest, EquivocationEscalatesMonotonicallyAcrossEpochs) {
  // Satellite: quarantine → strike → ban must escalate monotonically when
  // the SAME committee re-offends in successive epochs, with the strike
  // state threaded through export_carry/adopt_carry.
  mvcom::core::SupervisorCarry carry;
  int last_strikes = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    EpochSupervisor sup(config(), 30 + static_cast<std::uint64_t>(epoch));
    sup.adopt_carry(carry);
    for (std::uint32_t i = 0; i < 6; ++i) {
      sup.on_submission(honest(i, 600), 700.0, 50.0);
    }
    // One equivocation per epoch (a verified submission binding a new s_i).
    const Admission a = sup.on_submission(honest(0, 900), 700.0, 50.0);
    // max_strikes = 3: epochs 0 and 1 quarantine, epoch 2 bans.
    EXPECT_EQ(a, epoch < 2 ? Admission::kQuarantined : Admission::kBanned);
    carry = sup.export_carry();
    ASSERT_FALSE(carry.entries.empty());
    const auto& entry = carry.entries.front();
    EXPECT_EQ(entry.committee_id, 0u);
    EXPECT_GT(entry.strikes, last_strikes);  // strictly monotone
    last_strikes = entry.strikes;
    EXPECT_EQ(entry.banned, epoch == 2);
  }
}

TEST(SupervisorCarryTest, CarriedBanRefusesSubmissionAndHeartbeatReturn) {
  mvcom::core::SupervisorCarry carry;
  carry.entries.push_back({4, 3, true});
  EpochSupervisor sup(config(), 33);
  sup.adopt_carry(carry);
  // Even a perfectly honest submission is refused for the whole epoch...
  EXPECT_EQ(sup.on_submission(honest(4, 600), 700.0, 50.0),
            Admission::kBanned);
  EXPECT_FALSE(reports_contain(sup, 4));
  // ...and the recovery door (what the heartbeat monitor calls when a ping
  // returns) never re-admits a banned committee either.
  EXPECT_FALSE(sup.on_recovery(4));
  EXPECT_FALSE(reports_contain(sup, 4));
  const auto banned = sup.banned_ids();
  ASSERT_EQ(banned.size(), 1u);
  EXPECT_EQ(banned[0], 4u);
  // The ban itself survives the next export (monotone, never downgraded).
  const auto out = sup.export_carry();
  ASSERT_FALSE(out.entries.empty());
  EXPECT_TRUE(out.entries.front().banned);
}

TEST(SupervisorCarryTest, CarriedStrikesAloneDoNotBanUntilNextOffense) {
  // A committee arriving with its strike budget already exhausted is NOT
  // banned on adoption (membership is unknown then); the ban fires at its
  // next in-epoch offense instead.
  mvcom::core::SupervisorCarry carry;
  carry.entries.push_back({0, 3, false});
  EpochSupervisor sup(config(), 34);
  sup.adopt_carry(carry);
  EXPECT_EQ(sup.on_submission(honest(0, 600), 700.0, 50.0),
            Admission::kAdmitted);
  EXPECT_EQ(sup.on_submission(inflated(0, 600, 1800), 700.0, 50.0),
            Admission::kBanned);
}

TEST(RiskPolicyTest, TightenedStrikeBudgetNeverBansAFirstOffense) {
  SupervisorConfig c = config();
  c.risk.enabled = true;
  c.risk.tighten_step = 0.5;  // extreme tightening pressure
  EpochSupervisor sup(c, 35);
  mvcom::core::SupervisorCarry carry;
  carry.risk = 1000.0;  // inherited panic from prior epochs
  sup.adopt_carry(carry);
  // The floor: however tight the budget gets, a first offense only
  // quarantines — instant bans would let a broad attack convert the whole
  // membership into bans.
  EXPECT_EQ(sup.effective_max_strikes(), 2);
  EXPECT_EQ(sup.on_submission(inflated(0, 600, 1200), 700.0, 50.0),
            Admission::kQuarantined);
  EXPECT_FALSE(sup.health(0)->banned);
}

TEST(RiskPolicyTest, BanIsSuppressedWhenItWouldCostUsableMembers) {
  // Risk-adaptive supervisors refuse to ban below the N_max line: with the
  // whole membership at 2 committees, even endless re-offending keeps the
  // offender quarantined (excluded from decisions) but never banned.
  SupervisorConfig c = config(2);
  c.risk.enabled = true;
  EpochSupervisor sup(c, 36);
  sup.on_submission(honest(1, 600), 700.0, 50.0);
  for (int offense = 0; offense < 6; ++offense) {
    EXPECT_EQ(sup.on_submission(
                  inflated(0, 600, 1200 + 100 * static_cast<std::uint64_t>(
                                              offense)),
                  700.0, 50.0),
              Admission::kQuarantined)
        << "offense " << offense;
  }
  EXPECT_FALSE(sup.health(0)->banned);
  EXPECT_GE(sup.health(0)->strikes, 6);
  EXPECT_FALSE(permits(sup.decide(), 0));  // still never admitted
  // The static supervisor keeps the paper's unconditional ban.
  EpochSupervisor fixed(config(2), 36);
  fixed.on_submission(honest(1, 600), 700.0, 50.0);
  fixed.on_submission(inflated(0, 600, 1200), 700.0, 50.0);
  fixed.on_submission(inflated(0, 600, 1300), 700.0, 50.0);
  EXPECT_EQ(fixed.on_submission(inflated(0, 600, 1400), 700.0, 50.0),
            Admission::kBanned);
}

TEST(RiskPolicyTest, BanStillFiresWhileMembershipExceedsNmax) {
  // Above the N_max cutoff bans are free (listening stopped there anyway):
  // 8 honest members + the offender = 9 unbanned > N_max = 8.
  SupervisorConfig c = config(10);
  c.risk.enabled = true;
  EpochSupervisor sup(c, 37);
  for (std::uint32_t i = 1; i <= 8; ++i) {
    sup.on_submission(honest(i, 600), 700.0, 50.0);
  }
  sup.on_submission(inflated(0, 600, 1200), 700.0, 50.0);
  sup.on_submission(inflated(0, 600, 1300), 700.0, 50.0);
  EXPECT_EQ(sup.on_submission(inflated(0, 600, 1400), 700.0, 50.0),
            Admission::kBanned);
  EXPECT_TRUE(sup.health(0)->banned);
}

TEST(RiskPolicyTest, StrikesRaiseNminWithTheorem2Accounting) {
  SupervisorConfig c = config(10, 4800);  // 8 × 600 fits exactly
  c.risk.enabled = true;
  c.risk.escalation_step = 1.0;  // +1 N_min per strike
  EpochSupervisor sup(c, 38);
  for (std::uint32_t i = 0; i < 8; ++i) {
    sup.on_submission(honest(i, 600), 700.0, 50.0);
  }
  const std::size_t base = sup.scheduler().n_min();
  ASSERT_EQ(base, 5u);  // ⌈0.5 · 10⌉
  sup.on_submission(inflated(8, 600, 1800), 700.0, 50.0);
  sup.on_submission(inflated(9, 600, 1800), 700.0, 50.0);
  EXPECT_GT(sup.risk_score(), 0.0);
  EXPECT_EQ(sup.scheduler().n_min(), base + 2);
  ASSERT_FALSE(sup.resizes().empty());
  const auto& last = sup.resizes().back();
  EXPECT_EQ(last.n_min_after, base + 2);
  EXPECT_GT(last.n_min_after, last.n_min_before);
  EXPECT_GE(last.perturbation_bound, 0.0);
  EXPECT_TRUE(last.within_bound);
  // The boosted floor still admits a feasible decision (the clamp's job).
  const auto d = sup.decide();
  EXPECT_TRUE(d.decision.feasible);
  EXPECT_GE(d.decision.permitted_ids.size(), base + 2);
}

TEST(RiskPolicyTest, ExportedRiskDecaysByCarryFactor) {
  SupervisorConfig c = config();
  c.risk.enabled = true;  // carry_decay = 0.5
  EpochSupervisor sup(c, 39);
  sup.on_submission(inflated(0, 600, 1200), 700.0, 50.0);
  sup.on_submission(inflated(1, 600, 1200), 700.0, 50.0);
  EXPECT_DOUBLE_EQ(sup.risk_score(), 2.0);  // strike_weight = 1
  const auto carry = sup.export_carry();
  EXPECT_DOUBLE_EQ(carry.risk, 1.0);
  ASSERT_EQ(carry.entries.size(), 2u);
}

TEST(OnlineSchedulerResizeTest, SetNminRefusesToReachTheNmaxCutoff) {
  mvcom::core::OnlineCommitteeScheduler sched(config().scheduler, 40);
  // N_max = ⌈0.8 · 10⌉ = 8: raising N_min to 8 would make bootstrap
  // unreachable, so the call must refuse and change nothing.
  const std::size_t before = sched.n_min();
  EXPECT_TRUE(sched.set_n_min(7));
  EXPECT_EQ(sched.n_min(), 7u);
  EXPECT_FALSE(sched.set_n_min(sched.n_max_count()));
  EXPECT_EQ(sched.n_min(), 7u);
  EXPECT_TRUE(sched.set_n_min(before));
}

TEST(SupervisorConfigTest, RejectsDegenerateParameters) {
  SupervisorConfig bad_strikes = config();
  bad_strikes.max_strikes = 0;
  EXPECT_THROW(EpochSupervisor(bad_strikes, 1), std::invalid_argument);
  SupervisorConfig bad_interval = config();
  bad_interval.ping_interval_seconds = 0.0;
  EXPECT_THROW(EpochSupervisor(bad_interval, 1), std::invalid_argument);
  SupervisorConfig bad_backoff = config();
  bad_backoff.ping_backoff_factor = 0.5;
  EXPECT_THROW(EpochSupervisor(bad_backoff, 1), std::invalid_argument);
}

/// DES fixture: 8 committees on nodes 0..7, the observer on node 8.
class SupervisorMonitorTest : public ::testing::Test {
 protected:
  SupervisorMonitorTest()
      : network_(simulator_, mvcom::common::Rng(99),
                 std::make_shared<mvcom::net::ExponentialLatency>(
                     mvcom::common::SimTime(1.0)),
                 9),
        supervisor_(monitor_config(), 20) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      supervisor_.on_submission(honest(i, 700), 650.0, 40.0);
      supervisor_.register_committee_node(i, i);
    }
    supervisor_.attach_monitor(simulator_, network_, 8);
  }

  static SupervisorConfig monitor_config() {
    SupervisorConfig c = config();
    c.ping_interval_seconds = 30.0;
    c.ping_timeout_seconds = 12.0;  // RTT ≈ 2×1 s: healthy pings pass
    c.missed_pings_before_failure = 3;
    return c;
  }

  mvcom::sim::Simulator simulator_;
  mvcom::net::Network network_;
  EpochSupervisor supervisor_;
};

TEST_F(SupervisorMonitorTest, CrashIsDetectedAfterKMissedPings) {
  simulator_.schedule_at(mvcom::common::SimTime(100.0),
                         [this] { network_.set_failed(5, true); });
  simulator_.run_until(mvcom::common::SimTime(400.0));
  EXPECT_GE(supervisor_.failures_detected(), 1u);
  ASSERT_TRUE(supervisor_.health(5).has_value());
  EXPECT_TRUE(supervisor_.health(5)->failed);
  EXPECT_FALSE(reports_contain(supervisor_, 5));
  ASSERT_FALSE(supervisor_.failures().empty());
  EXPECT_EQ(supervisor_.failures()[0].committee_id, 5u);
  // Detection needs K = 3 consecutive missed probes at 30 s spacing.
  EXPECT_GE(supervisor_.failures()[0].sim_time_seconds, 100.0 + 2 * 30.0);
  // Backoff: the probing interval grew once the committee was declared down.
  EXPECT_GT(supervisor_.health(5)->ping_interval_seconds, 30.0);
}

TEST_F(SupervisorMonitorTest, SingleMissedPingIsTolerated) {
  // Down for one probe only (shorter than K×interval): no failure declared.
  simulator_.schedule_at(mvcom::common::SimTime(25.0),
                         [this] { network_.set_failed(3, true); });
  simulator_.schedule_at(mvcom::common::SimTime(45.0),
                         [this] { network_.set_failed(3, false); });
  simulator_.run_until(mvcom::common::SimTime(400.0));
  EXPECT_EQ(supervisor_.failures_detected(), 0u);
  EXPECT_TRUE(reports_contain(supervisor_, 3));
}

TEST_F(SupervisorMonitorTest, ReturningPingTriggersAutomaticRecovery) {
  simulator_.schedule_at(mvcom::common::SimTime(100.0),
                         [this] { network_.set_failed(5, true); });
  simulator_.schedule_at(mvcom::common::SimTime(500.0),
                         [this] { network_.set_failed(5, false); });
  simulator_.run_until(mvcom::common::SimTime(2500.0));
  EXPECT_GE(supervisor_.failures_detected(), 1u);
  EXPECT_GE(supervisor_.recoveries_detected(), 1u);
  EXPECT_FALSE(supervisor_.health(5)->failed);
  EXPECT_TRUE(supervisor_.health(5)->admitted);
  EXPECT_TRUE(reports_contain(supervisor_, 5));
  // The probing cadence resets once the committee answers again.
  EXPECT_DOUBLE_EQ(supervisor_.health(5)->ping_interval_seconds, 30.0);
}

TEST_F(SupervisorMonitorTest, TotalLossBurstTripsTheDetector) {
  // ping_rtt itself ignores loss; the supervisor models probe loss
  // explicitly, so a heavy, long loss burst must trip the K-missed detector
  // for at least one committee.
  simulator_.schedule_at(mvcom::common::SimTime(50.0), [this] {
    network_.set_loss_probability(0.95);
  });
  simulator_.schedule_at(mvcom::common::SimTime(350.0), [this] {
    network_.set_loss_probability(0.0);
  });
  simulator_.run_until(mvcom::common::SimTime(3000.0));
  EXPECT_GE(supervisor_.failures_detected(), 1u);
  // After the burst clears, every committee is eventually re-admitted.
  EXPECT_EQ(supervisor_.recoveries_detected(), supervisor_.failures_detected());
  EXPECT_EQ(supervisor_.scheduler().arrived(), 8u);
}

}  // namespace
