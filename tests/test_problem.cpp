// Tests for the MVCom problem model (Eq. 1–5) including the NP-hardness
// reduction of Lemma 1: a 0/1-knapsack instance and its MVCom image must
// have identical optima.

#include "mvcom/problem.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "baselines/exhaustive.hpp"

namespace {

using mvcom::baselines::Exhaustive;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;
using mvcom::core::Selection;

EpochInstance tiny_instance() {
  // Deadline t = max latency = 1200 (committee 2, the straggler from the
  // paper's Fig. 1 example: latencies 800, 900, 1200, 1000).
  return EpochInstance(
      {
          {0, 100, 800.0},
          {1, 150, 900.0},
          {2, 400, 1200.0},
          {3, 200, 1000.0},
      },
      /*alpha=*/1.5, /*capacity=*/700, /*n_min=*/1);
}

TEST(EpochInstanceTest, DeadlineDerivedFromMaxLatency) {
  const EpochInstance inst = tiny_instance();
  EXPECT_DOUBLE_EQ(inst.deadline(), 1200.0);
}

TEST(EpochInstanceTest, ExplicitDeadlineIsRespected) {
  const EpochInstance inst({{0, 10, 5.0}}, 1.0, 100, 0, 42.0);
  EXPECT_DOUBLE_EQ(inst.deadline(), 42.0);
  EXPECT_DOUBLE_EQ(inst.age(0), 37.0);
}

TEST(EpochInstanceTest, AgeMatchesEq1) {
  const EpochInstance inst = tiny_instance();
  // Π_i = t − l_i for permitted shards (Eq. 1).
  EXPECT_DOUBLE_EQ(inst.age(0), 400.0);
  EXPECT_DOUBLE_EQ(inst.age(1), 300.0);
  EXPECT_DOUBLE_EQ(inst.age(2), 0.0);  // the straggler itself has zero age
  EXPECT_DOUBLE_EQ(inst.age(3), 200.0);
}

TEST(EpochInstanceTest, UtilityMatchesEq2) {
  const EpochInstance inst = tiny_instance();
  const Selection x{1, 0, 1, 0};
  // U = (1.5*100 − 400) + (1.5*400 − 0) = -250 + 600 = 350.
  EXPECT_DOUBLE_EQ(inst.utility(x), 350.0);
  EXPECT_DOUBLE_EQ(inst.utility({0, 0, 0, 0}), 0.0);
}

TEST(EpochInstanceTest, SwapDeltaEqualsUtilityDifference) {
  const EpochInstance inst = tiny_instance();
  const Selection before{1, 1, 0, 0};
  Selection after = before;
  after[0] = 0;
  after[2] = 1;
  EXPECT_NEAR(inst.swap_delta(0, 2), inst.utility(after) - inst.utility(before),
              1e-9);
}

TEST(EpochInstanceTest, StatsAndFeasibility) {
  const EpochInstance inst = tiny_instance();
  const Selection x{1, 1, 1, 0};  // txs = 650 <= 700, chosen = 3
  const auto st = inst.stats(x);
  EXPECT_EQ(st.chosen, 3u);
  EXPECT_EQ(st.txs, 650u);
  EXPECT_TRUE(inst.feasible(x));
  const Selection over{1, 1, 1, 1};  // txs = 850 > 700
  EXPECT_FALSE(inst.feasible(over));
}

TEST(EpochInstanceTest, NminBindsFeasibility) {
  const EpochInstance inst({{0, 10, 1.0}, {1, 10, 2.0}}, 1.0, 100, 2);
  EXPECT_FALSE(inst.feasible({1, 0}));
  EXPECT_TRUE(inst.feasible({1, 1}));
}

TEST(EpochInstanceTest, ValuableDegreeUsesFloorForZeroAge) {
  const EpochInstance inst = tiny_instance();
  // Committee 2 has age 0; with floor 1.0 its term is s/1 = 400.
  const Selection x{0, 0, 1, 0};
  EXPECT_DOUBLE_EQ(inst.valuable_degree(x), 400.0);
  // Committee 0: 100/400 = 0.25.
  EXPECT_DOUBLE_EQ(inst.valuable_degree({1, 0, 0, 0}), 0.25);
}

TEST(EpochInstanceTest, PermittedTxsAndCumulativeAge) {
  const EpochInstance inst = tiny_instance();
  const Selection x{1, 0, 0, 1};
  EXPECT_EQ(inst.permitted_txs(x), 300u);
  EXPECT_DOUBLE_EQ(inst.cumulative_age(x), 600.0);
}

TEST(EpochInstanceTest, SchedulingWorthwhileCondition) {
  // Alg. 1 line 1: run only when |I| > N_min and Σ s > Ĉ.
  const EpochInstance binding = tiny_instance();  // Σ=850 > 700, |I|=4 > 1
  EXPECT_TRUE(binding.scheduling_worthwhile());
  const EpochInstance loose({{0, 10, 1.0}, {1, 10, 2.0}}, 1.0, 100, 1);
  EXPECT_FALSE(loose.scheduling_worthwhile());  // everything fits
}

TEST(EpochInstanceTest, FromReportsBridgesWorkload) {
  std::vector<mvcom::txn::ShardReport> reports(2);
  reports[0] = {7, 123, 600.0, 50.0};
  reports[1] = {9, 456, 700.0, 60.0};
  const auto inst = EpochInstance::from_reports(reports, 2.0, 1000, 1);
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst.committees()[0].id, 7u);
  EXPECT_DOUBLE_EQ(inst.committees()[0].latency, 650.0);
  EXPECT_DOUBLE_EQ(inst.deadline(), 760.0);
}

TEST(EpochInstanceTest, RejectsInvalidConstruction) {
  EXPECT_THROW(EpochInstance({}, 1.0, 10, 0), std::invalid_argument);
  EXPECT_THROW(EpochInstance({{0, 1, 1.0}}, 0.0, 10, 0),
               std::invalid_argument);
  EXPECT_THROW(EpochInstance({{0, 1, 1.0}}, -1.0, 10, 0),
               std::invalid_argument);
}

// --- Lemma 1: the knapsack reduction ----------------------------------------
// BKP-New: value_k = α s_k − (t − l_k), weight_k = s_k, capacity Ĉ, and the
// MVCom instance with J = {1}, N_min = 0 must agree on the optimum.

TEST(NpHardnessReductionTest, KnapsackAndMvcomOptimaCoincide) {
  // A hand-made BKP instance: values/weights below, capacity 10.
  struct Item {
    double value;
    std::uint64_t weight;
  };
  const std::vector<Item> items = {
      {6.0, 4}, {5.0, 3}, {3.0, 2}, {7.0, 5}, {1.0, 1}};
  const std::uint64_t capacity = 10;

  // Brute-force the knapsack optimum.
  double knapsack_best = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << items.size()); ++mask) {
    double value = 0.0;
    std::uint64_t weight = 0;
    for (std::size_t k = 0; k < items.size(); ++k) {
      if (mask & (1u << k)) {
        value += items[k].value;
        weight += items[k].weight;
      }
    }
    if (weight <= capacity) knapsack_best = std::max(knapsack_best, value);
  }

  // Reduction parameters (proof of Lemma 1): choose t and l_k such that
  // α·s_k − (t − l_k) = value_k with s_k = weight_k. Take α = 1, t = 100,
  // l_k = 100 + value_k − s_k.
  std::vector<Committee> committees;
  for (std::size_t k = 0; k < items.size(); ++k) {
    committees.push_back(
        {static_cast<std::uint32_t>(k), items[k].weight,
         100.0 + items[k].value - static_cast<double>(items[k].weight)});
  }
  const EpochInstance mvcom_instance(committees, 1.0, capacity, 0, 100.0);

  Exhaustive exact;
  const auto result = exact.solve(mvcom_instance);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.utility, knapsack_best, 1e-9);
}

// Regression: Σ s_i was accumulated in uint64 without a wrap check, so two
// huge shards could make scheduling_worthwhile() (and every downstream
// prefix sum) silently wrap. The sum is now validated at construction.
TEST(OverflowTest, TotalShardSizeOverflowIsRejectedAtConstruction) {
  constexpr std::uint64_t kHalfPlus =
      std::numeric_limits<std::uint64_t>::max() / 2 + 1;
  EXPECT_THROW(EpochInstance({{0, kHalfPlus, 800.0}, {1, kHalfPlus, 900.0}},
                             1.5, 1000, 0),
               std::invalid_argument);
}

TEST(OverflowTest, SingleMaximalShardIsStillAccepted) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const EpochInstance inst({{0, kMax, 800.0}}, 1.5, 1000, 0);
  EXPECT_EQ(inst.total_txs(), kMax);
}

TEST(OverflowTest, TotalTxsTracksTheCommitteeSum) {
  const EpochInstance inst = tiny_instance();
  EXPECT_EQ(inst.total_txs(), 100u + 150u + 400u + 200u);
}

}  // namespace
