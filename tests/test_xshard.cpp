// Unit tests for txn/xshard — conflict-aware assembly and the scheduling
// baselines. The heavy lifting is invariant replay: every scheduler claim
// (capacity, locks, deadlines) is re-checked from the outcome ledger alone,
// and the ledger digest is exercised as the replay witness it is.

#include "txn/xshard/assembler.hpp"
#include "txn/xshard/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "txn/accounts/model.hpp"
#include "txn/workload.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::txn::AccountEpoch;
using mvcom::txn::AccountModelConfig;
using mvcom::txn::AccountTx;
using mvcom::txn::AccountTxGenerator;
using mvcom::txn::Assembly;
using mvcom::txn::AssemblerPolicy;
using mvcom::txn::home_shard;
using mvcom::txn::SchedulerPolicy;
using mvcom::txn::TxClass;
using mvcom::txn::XShardConfig;

AccountModelConfig small_model() {
  AccountModelConfig config;
  config.num_accounts = 5'000;
  config.num_shards = 8;
  config.txs_per_epoch = 3'000;
  config.cross_shard_ratio = 0.3;
  return config;
}

XShardConfig small_xshard() {
  XShardConfig config;
  config.num_shards = 8;
  config.rounds_per_epoch = 32;
  config.shard_round_capacity = 16;
  return config;
}

AccountEpoch make_epoch(std::uint64_t seed = 7, std::size_t index = 0) {
  return AccountTxGenerator(small_model()).epoch_keyed(seed, index);
}

/// Distinct shards the TX touches besides `placement`.
std::vector<std::uint32_t> remote_shards(const AccountTx& tx,
                                         std::uint32_t placement,
                                         std::uint32_t num_shards) {
  std::vector<std::uint32_t> remotes;
  tx.for_each_account([&](std::uint32_t account, bool /*write*/) {
    const std::uint32_t shard = home_shard(account, num_shards);
    if (shard != placement &&
        std::find(remotes.begin(), remotes.end(), shard) == remotes.end()) {
      remotes.push_back(shard);
    }
  });
  return remotes;
}

TEST(AssemblerTest, ConflictAwarePlacesAtMajorityHomeShard) {
  const AccountEpoch epoch = make_epoch();
  Rng rng(1);
  const Assembly assembly =
      mvcom::txn::assemble(epoch, 8, AssemblerPolicy::kConflictAware, rng);
  ASSERT_EQ(assembly.placement.size(), epoch.txs.size());
  for (std::size_t t = 0; t < epoch.txs.size(); ++t) {
    const std::uint32_t placement = assembly.placement[t];
    ASSERT_LT(placement, 8u);
    // Count touched-account homes: no other shard may strictly beat the
    // chosen one (ties are broken by load then id, both valid majorities).
    std::map<std::uint32_t, int> tally;
    epoch.txs[t].for_each_account(
        [&](std::uint32_t account, bool /*write*/) {
          ++tally[home_shard(account, 8)];
        });
    ASSERT_TRUE(tally.count(placement) > 0)
        << "tx " << epoch.txs[t].tx_id << " placed off every touched shard";
    for (const auto& [shard, count] : tally) {
      EXPECT_LE(count, tally[placement])
          << "tx " << epoch.txs[t].tx_id << ": shard " << shard
          << " outweighs placement " << placement;
    }
  }
}

TEST(AssemblerTest, RatioZeroAssemblesFullyIntra) {
  AccountModelConfig model = small_model();
  model.cross_shard_ratio = 0.0;
  const AccountEpoch epoch = AccountTxGenerator(model).epoch_keyed(7, 0);
  Rng rng(1);
  const Assembly assembly =
      mvcom::txn::assemble(epoch, 8, AssemblerPolicy::kConflictAware, rng);
  EXPECT_EQ(assembly.cross_txs, 0u);
  EXPECT_EQ(assembly.total_legs, epoch.txs.size());
}

TEST(AssemblerTest, LegAccountingMatchesPlacement) {
  const AccountEpoch epoch = make_epoch();
  for (const auto policy :
       {AssemblerPolicy::kConflictAware, AssemblerPolicy::kRandomOblivious}) {
    Rng rng(5);
    const Assembly assembly = mvcom::txn::assemble(epoch, 8, policy, rng);
    std::uint64_t legs = 0, cross = 0;
    for (std::size_t t = 0; t < epoch.txs.size(); ++t) {
      const auto remotes = remote_shards(epoch.txs[t], assembly.placement[t], 8);
      legs += 1 + remotes.size();
      cross += remotes.empty() ? 0u : 1u;
    }
    EXPECT_EQ(assembly.total_legs, legs) << mvcom::txn::to_string(policy);
    EXPECT_EQ(assembly.cross_txs, cross) << mvcom::txn::to_string(policy);
  }
}

TEST(AssemblerTest, ConflictAwareNeverPaysMoreLegsThanOblivious) {
  // Per-TX the conflict-aware arm minimizes remote legs, so in aggregate it
  // can never need more legs than random placement of the same epoch.
  const AccountEpoch epoch = make_epoch();
  Rng aware_rng(1);
  Rng oblivious_rng(1);
  const Assembly aware = mvcom::txn::assemble(
      epoch, 8, AssemblerPolicy::kConflictAware, aware_rng);
  const Assembly oblivious = mvcom::txn::assemble(
      epoch, 8, AssemblerPolicy::kRandomOblivious, oblivious_rng);
  EXPECT_LT(aware.total_legs, oblivious.total_legs);
  EXPECT_LT(aware.cross_txs, oblivious.cross_txs);
}

TEST(SchedulerTest, TalliesAreInternallyConsistent) {
  const AccountEpoch epoch = make_epoch();
  const XShardConfig config = small_xshard();
  const auto result = mvcom::txn::run_epoch(epoch, config, 7);
  const auto& out = result.outcome;
  ASSERT_EQ(out.tx_outcomes.size(), epoch.txs.size());
  ASSERT_EQ(out.shards.size(), config.num_shards);
  EXPECT_EQ(out.committed_txs + out.deferred_txs, epoch.txs.size());
  EXPECT_EQ(out.committed_txs, out.intra_txs + out.cross_txs);
  std::uint64_t intra = 0, cross = 0, deferred = 0;
  for (const auto& shard : out.shards) {
    intra += shard.intra_committed;
    cross += shard.cross_committed;
    deferred += shard.deferred;
  }
  EXPECT_EQ(intra, out.intra_txs);
  EXPECT_EQ(cross, out.cross_txs);
  EXPECT_EQ(deferred, out.deferred_txs);
  EXPECT_LE(out.rounds_used, config.rounds_per_epoch);
  EXPECT_GT(out.committed_txs, 0u);
  EXPECT_GT(out.cross_txs, 0u);  // ratio 0.3 must produce 2-phase commits
}

TEST(SchedulerTest, CapacityAndLockInvariantsReplayFromTheLedger) {
  const AccountEpoch epoch = make_epoch();
  XShardConfig config = small_xshard();
  config.shard_round_capacity = 4;  // tight, so capacity actually binds
  for (const auto policy :
       {SchedulerPolicy::kGreedyColoring, SchedulerPolicy::kDynamicDeadline}) {
    config.scheduler = policy;
    const auto result = mvcom::txn::run_epoch(epoch, config, 7);
    const auto& out = result.outcome;
    // Replay the capacity grid from the per-TX outcomes alone.
    std::vector<std::uint64_t> used(
        static_cast<std::size_t>(config.num_shards) * config.rounds_per_epoch,
        0);
    // Account locks: per account, the committed intervals [r, r+span) with
    // their access mode — writer-exclusive, reader-shared.
    struct Hold {
      std::uint32_t begin, end;
      bool write;
    };
    std::map<std::uint32_t, std::vector<Hold>> holds;
    for (std::size_t t = 0; t < epoch.txs.size(); ++t) {
      const auto& oc = out.tx_outcomes[t];
      if (oc.cls == TxClass::kDeferred) continue;
      const auto remotes = remote_shards(epoch.txs[t], oc.shard,
                                         config.num_shards);
      EXPECT_EQ(oc.cls == TxClass::kCross, !remotes.empty());
      const std::uint32_t span = remotes.empty() ? 1 : 2;
      ASSERT_LE(oc.round + span, config.rounds_per_epoch);
      used[static_cast<std::size_t>(oc.shard) * config.rounds_per_epoch +
           oc.round] += 1;
      for (const std::uint32_t q : remotes) {
        used[static_cast<std::size_t>(q) * config.rounds_per_epoch + oc.round +
             1] += 1;
      }
      epoch.txs[t].for_each_account([&](std::uint32_t account, bool write) {
        holds[account].push_back({oc.round, oc.round + span, write});
      });
    }
    for (const std::uint64_t legs : used) {
      EXPECT_LE(legs, config.shard_round_capacity)
          << mvcom::txn::to_string(policy);
    }
    for (const auto& [account, intervals] : holds) {
      for (std::size_t i = 0; i < intervals.size(); ++i) {
        for (std::size_t j = i + 1; j < intervals.size(); ++j) {
          const bool overlap = intervals[i].begin < intervals[j].end &&
                               intervals[j].begin < intervals[i].end;
          if (overlap) {
            EXPECT_FALSE(intervals[i].write || intervals[j].write)
                << "conflicting lock on account " << account << " under "
                << mvcom::txn::to_string(policy);
          }
        }
      }
    }
  }
}

TEST(SchedulerTest, DynamicSchedulerHonorsArrivalAndDeadline) {
  const AccountEpoch epoch = make_epoch();
  XShardConfig config = small_xshard();
  config.scheduler = SchedulerPolicy::kDynamicDeadline;
  config.deadline_slack_rounds = 6;
  const auto result = mvcom::txn::run_epoch(epoch, config, 7);
  for (std::size_t t = 0; t < epoch.txs.size(); ++t) {
    const auto& oc = result.outcome.tx_outcomes[t];
    if (oc.cls == TxClass::kDeferred) continue;
    const double frac = (epoch.txs[t].timestamp - epoch.window_start) /
                        (epoch.window_end - epoch.window_start);
    std::uint32_t arrival = static_cast<std::uint32_t>(
        std::clamp(frac, 0.0, 1.0) *
        static_cast<double>(config.rounds_per_epoch));
    arrival = std::min(arrival, config.rounds_per_epoch - 1);
    EXPECT_GE(oc.round, arrival) << "tx " << epoch.txs[t].tx_id;
    EXPECT_LE(oc.round, arrival + config.deadline_slack_rounds)
        << "tx " << epoch.txs[t].tx_id;
  }
}

TEST(SchedulerTest, LedgerDigestIsAReplayWitness) {
  const AccountEpoch epoch = make_epoch();
  const XShardConfig config = small_xshard();
  const auto a = mvcom::txn::run_epoch(epoch, config, 7);
  const auto b = mvcom::txn::run_epoch(epoch, config, 7);
  EXPECT_EQ(a.outcome.ledger_digest, b.outcome.ledger_digest);
  // The witness separates the assembler arms…
  XShardConfig oblivious = config;
  oblivious.assembler = AssemblerPolicy::kRandomOblivious;
  EXPECT_NE(a.outcome.ledger_digest,
            mvcom::txn::run_epoch(epoch, oblivious, 7).outcome.ledger_digest);
  // …and the oblivious arm is itself keyed: same seed replays, different
  // seed reshuffles the placement stream.
  EXPECT_EQ(mvcom::txn::run_epoch(epoch, oblivious, 7).outcome.ledger_digest,
            mvcom::txn::run_epoch(epoch, oblivious, 7).outcome.ledger_digest);
  EXPECT_NE(mvcom::txn::run_epoch(epoch, oblivious, 7).outcome.ledger_digest,
            mvcom::txn::run_epoch(epoch, oblivious, 8).outcome.ledger_digest);
}

TEST(SchedulerTest, ConflictAwareDominatesObliviousOnCommits) {
  const AccountEpoch epoch = make_epoch();
  XShardConfig config = small_xshard();
  const auto aware = mvcom::txn::run_epoch(epoch, config, 7);
  config.assembler = AssemblerPolicy::kRandomOblivious;
  const auto oblivious = mvcom::txn::run_epoch(epoch, config, 7);
  EXPECT_GT(aware.outcome.committed_txs, oblivious.outcome.committed_txs);
}

TEST(SchedulerTest, RejectsDegenerateConfigs) {
  const AccountEpoch epoch = make_epoch();
  XShardConfig config = small_xshard();
  config.rounds_per_epoch = 0;
  EXPECT_THROW(mvcom::txn::run_epoch(epoch, config, 7), std::invalid_argument);
  // A mismatched assembly is rejected too.
  Assembly empty;
  EXPECT_THROW(mvcom::txn::schedule(epoch, empty, small_xshard()),
               std::invalid_argument);
}

TEST(AccountWorkloadTest, EffectiveTxCountIsTheCommittedTally) {
  const AccountModelConfig model = small_model();
  XShardConfig xshard = small_xshard();
  mvcom::txn::WorkloadConfig latency;
  latency.mode = mvcom::txn::WorkloadMode::kAccountModel;
  latency.num_committees = model.num_shards;
  const mvcom::txn::AccountWorkloadGenerator gen(model, xshard, latency);
  const auto result = gen.epoch_keyed(7, 2);
  ASSERT_EQ(result.workload.reports.size(), model.num_shards);
  for (std::uint32_t c = 0; c < model.num_shards; ++c) {
    const auto& report = result.workload.reports[c];
    EXPECT_EQ(report.committee_id, c);
    EXPECT_EQ(report.tx_count, result.xshard.outcome.shards[c].committed());
    EXPECT_GT(report.formation_latency, 0.0);
    EXPECT_GT(report.consensus_latency, 0.0);
  }
  // Pure in (seed, epoch): a replay is bitwise identical on the digest.
  const auto replay = gen.epoch_keyed(7, 2);
  EXPECT_EQ(result.xshard.outcome.ledger_digest,
            replay.xshard.outcome.ledger_digest);
  EXPECT_EQ(result.workload.reports[0].formation_latency,
            replay.workload.reports[0].formation_latency);
}

TEST(AccountWorkloadTest, RejectsInconsistentConfigs) {
  const AccountModelConfig model = small_model();
  const XShardConfig xshard = small_xshard();
  mvcom::txn::WorkloadConfig block_mode;
  block_mode.num_committees = model.num_shards;
  EXPECT_THROW(
      mvcom::txn::AccountWorkloadGenerator(model, xshard, block_mode),
      std::invalid_argument);
  mvcom::txn::WorkloadConfig mismatched;
  mismatched.mode = mvcom::txn::WorkloadMode::kAccountModel;
  mismatched.num_committees = model.num_shards + 1;
  EXPECT_THROW(
      mvcom::txn::AccountWorkloadGenerator(model, xshard, mismatched),
      std::invalid_argument);
}

}  // namespace
