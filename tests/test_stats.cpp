// Tests for common/stats — streaming moments, percentiles, CDFs, histograms.

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace {

using mvcom::common::cdf_at_quantiles;
using mvcom::common::empirical_cdf;
using mvcom::common::Histogram;
using mvcom::common::percentile;
using mvcom::common::Rng;
using mvcom::common::RunningStats;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

// Regression coverage for the batch mean() the benches now share instead of
// hand-rolling their own accumulation loops.
TEST(MeanTest, MatchesRunningStats) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (const double x : v) s.add(x);
  EXPECT_DOUBLE_EQ(mvcom::common::mean(v), s.mean());
  EXPECT_DOUBLE_EQ(mvcom::common::mean(v), 5.0);
}

TEST(MeanTest, EmptySampleIsZero) {
  EXPECT_EQ(mvcom::common::mean(std::vector<double>{}), 0.0);
}

TEST(MeanTest, SingleElement) {
  EXPECT_DOUBLE_EQ(mvcom::common::mean(std::vector<double>{42.5}), 42.5);
}

TEST(MeanTest, StableForLargeOffsetSamples) {
  // Welford pass must not lose the small deltas riding on a large offset —
  // the naive sum-then-divide does here in float, and can in double for
  // longer streams.
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back(1e9 + (i % 2 == 0 ? 0.25 : 0.75));
  }
  EXPECT_NEAR(mvcom::common::mean(v), 1e9 + 0.5, 1e-6);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: Σ(x-5)² = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
}

TEST(EmpiricalCdfTest, StepsAreMonotone) {
  const std::vector<double> v{3.0, 1.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cumulative_probability, cdf[i].cumulative_probability);
  }
}

TEST(CdfAtQuantilesTest, EndpointsAndCount) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const auto points = cdf_at_quantiles(v, 11);
  ASSERT_EQ(points.size(), 11u);
  EXPECT_DOUBLE_EQ(points.front().value, 0.0);
  EXPECT_DOUBLE_EQ(points.front().cumulative_probability, 0.0);
  EXPECT_DOUBLE_EQ(points.back().value, 100.0);
  EXPECT_DOUBLE_EQ(points.back().cumulative_probability, 1.0);
  EXPECT_NEAR(points[5].value, 50.0, 1e-9);
}

TEST(MeanCiTest, KnownSample) {
  // n=4, mean 2.5, sample sd = sqrt(5/3); 95% half-width = 1.96·sd/2.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const auto ci = mvcom::common::mean_confidence_interval(v, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 2.5);
  EXPECT_NEAR(ci.half_width, 1.96 * std::sqrt(5.0 / 3.0) / 2.0, 1e-3);
}

TEST(MeanCiTest, WiderConfidenceWiderInterval) {
  const std::vector<double> v{1.0, 5.0, 3.0, 2.0, 4.0, 6.0};
  const auto c90 = mvcom::common::mean_confidence_interval(v, 0.90);
  const auto c99 = mvcom::common::mean_confidence_interval(v, 0.99);
  EXPECT_LT(c90.half_width, c99.half_width);
  EXPECT_DOUBLE_EQ(c90.mean, c99.mean);
}

TEST(MeanCiTest, CoversTheTrueMeanMostOfTheTime) {
  // Property check: ~95% of intervals from N(10, 2) samples cover 10.
  Rng rng(77);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 30; ++i) sample.push_back(rng.normal(10.0, 2.0));
    const auto ci = mvcom::common::mean_confidence_interval(sample, 0.95);
    if (std::abs(ci.mean - 10.0) <= ci.half_width) ++covered;
  }
  EXPECT_GT(covered, trials * 88 / 100);
  EXPECT_LT(covered, trials * 100 / 100);
}

TEST(MeanCiTest, RejectsBadInputs) {
  EXPECT_THROW(static_cast<void>(
                   mvcom::common::mean_confidence_interval({}, 0.95)),
               std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(static_cast<void>(
                   mvcom::common::mean_confidence_interval(v, 0.42)),
               std::invalid_argument);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lower(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(2), 6.0);
}

TEST(HistogramTest, ToStringListsAllBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("0..1: 1"), std::string::npos);
  EXPECT_NE(s.find("1..2: 0"), std::string::npos);
}

}  // namespace
