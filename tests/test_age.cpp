// Tests for per-transaction cumulative-age accounting (txn/age).

#include "txn/age.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::txn::deal_blocks_with_provenance;
using mvcom::txn::shard_age_profile;
using mvcom::txn::ShardBlocks;
using mvcom::txn::total_age_profile;
using mvcom::txn::Trace;

Trace tiny_trace() {
  // Three blocks at t = 0, 100, 200 with 10, 20, 30 TXs.
  Trace trace;
  for (int i = 0; i < 3; ++i) {
    mvcom::txn::BlockRecord b;
    b.block_id = static_cast<std::uint64_t>(i);
    b.btime = 100.0 * i;
    b.tx_count = static_cast<std::uint64_t>(10 * (i + 1));
    b.bhash = "h" + std::to_string(i);
    trace.blocks.push_back(b);
  }
  return trace;
}

TEST(ShardAgeProfileTest, HandComputedAges) {
  const Trace trace = tiny_trace();
  ShardBlocks shard;
  shard.block_indices = {0, 2};
  // Commit at t=300: block0's 10 TXs waited 300 each, block2's 30 waited 100.
  const auto profile = shard_age_profile(trace, shard, 300.0);
  EXPECT_EQ(profile.tx_count, 40u);
  EXPECT_DOUBLE_EQ(profile.total_age, 10 * 300.0 + 30 * 100.0);
  EXPECT_DOUBLE_EQ(profile.max_age, 300.0);
  EXPECT_DOUBLE_EQ(profile.mean_age(), 6000.0 / 40.0);
}

TEST(ShardAgeProfileTest, FutureBlocksClampToZeroAge) {
  const Trace trace = tiny_trace();
  ShardBlocks shard;
  shard.block_indices = {2};  // btime 200
  const auto profile = shard_age_profile(trace, shard, 150.0);
  EXPECT_DOUBLE_EQ(profile.total_age, 0.0);
  EXPECT_EQ(profile.tx_count, 30u);
}

TEST(ShardAgeProfileTest, EmptyShardIsZero) {
  const Trace trace = tiny_trace();
  const auto profile = shard_age_profile(trace, ShardBlocks{}, 500.0);
  EXPECT_EQ(profile.tx_count, 0u);
  EXPECT_DOUBLE_EQ(profile.mean_age(), 0.0);
}

TEST(TotalAgeProfileTest, SumsAcrossShards) {
  const Trace trace = tiny_trace();
  std::vector<ShardBlocks> shards(2);
  shards[0].block_indices = {0};
  shards[1].block_indices = {1, 2};
  const auto total = total_age_profile(trace, shards, 400.0);
  EXPECT_EQ(total.tx_count, 60u);
  EXPECT_DOUBLE_EQ(total.total_age,
                   10 * 400.0 + 20 * 300.0 + 30 * 200.0);
  EXPECT_DOUBLE_EQ(total.max_age, 400.0);
}

TEST(DealWithProvenanceTest, PartitionsAllBlocksExactlyOnce) {
  Rng rng(3);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 60;
  tc.target_total_txs = 60'000;
  const Trace trace = mvcom::txn::generate_trace(tc, rng);
  const auto shards = deal_blocks_with_provenance(trace, 12, rng);
  ASSERT_EQ(shards.size(), 12u);
  std::set<std::size_t> seen;
  for (const auto& shard : shards) {
    EXPECT_GE(shard.block_indices.size(), 1u);
    for (const std::size_t b : shard.block_indices) {
      EXPECT_TRUE(seen.insert(b).second) << "block dealt twice: " << b;
    }
  }
  EXPECT_EQ(seen.size(), trace.blocks.size());
}

TEST(DealWithProvenanceTest, AgreesWithTxCountTotals) {
  Rng rng(4);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 40;
  tc.target_total_txs = 40'000;
  const Trace trace = mvcom::txn::generate_trace(tc, rng);
  const auto shards = deal_blocks_with_provenance(trace, 8, rng);
  const auto total = total_age_profile(trace, shards, 1e12);
  EXPECT_EQ(total.tx_count, trace.total_txs());
}

TEST(AgeMonotonicityTest, LaterCommitMeansOlderTxs) {
  // The motivation behind MVCom: every second the final committee waits for
  // a straggler, every already-submitted TX ages by that second.
  const Trace trace = tiny_trace();
  ShardBlocks shard;
  shard.block_indices = {0, 1, 2};
  const auto early = shard_age_profile(trace, shard, 300.0);
  const auto late = shard_age_profile(trace, shard, 900.0);
  EXPECT_DOUBLE_EQ(late.total_age - early.total_age,
                   600.0 * static_cast<double>(early.tx_count));
}

}  // namespace
