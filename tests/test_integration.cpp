// Cross-module integration tests: trace → workload → MVCom instance →
// solvers, and the full Elastico-epoch → MVCom-scheduler closed loop that
// the paper's system diagram (Fig. 5) describes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/dynamic_programming.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/whale_optimization.hpp"
#include "common/rng.hpp"
#include "mvcom/se_scheduler.hpp"
#include "sharding/elastico.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::core::EpochInstance;
using mvcom::core::SeParams;
using mvcom::core::SeScheduler;
using mvcom::core::Selection;

TEST(IntegrationTest, TraceToWorkloadToInstance) {
  Rng rng(1);
  const auto trace = mvcom::txn::generate_trace({}, rng);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 50;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  const auto workload = gen.epoch(rng);

  // The paper's Fig. 9(a) regime: |I|=50, Ĉ=40K, N_min=50%.
  const auto inst = EpochInstance::from_reports(workload.reports, 1.5, 40'000,
                                                25);
  EXPECT_EQ(inst.size(), 50u);
  EXPECT_TRUE(inst.scheduling_worthwhile());
  EXPECT_DOUBLE_EQ(inst.deadline(), workload.max_latency());
}

TEST(IntegrationTest, SeBeatsOrMatchesBaselinesOnPaperScale) {
  // §VI-F/G: SE converges to the highest utility among the four algorithms.
  // Averaged over seeds; the margin claim (20–30%) is checked in the bench,
  // here we assert the ordering SE >= max(baseline) - small tolerance.
  Rng rng(2);
  const auto trace = mvcom::txn::generate_trace({}, rng);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 50;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);

  double se_total = 0.0;
  double best_baseline_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng epoch_rng(seed);
    const auto workload = gen.epoch(epoch_rng);
    const auto inst = EpochInstance::from_reports(workload.reports, 1.5,
                                                  40'000, 25);

    SeParams params;
    params.threads = 8;
    params.max_iterations = 4000;
    SeScheduler se(inst, params, seed);
    const auto se_result = se.run();
    ASSERT_TRUE(se_result.feasible) << "seed " << seed;
    se_total += se_result.utility;

    mvcom::baselines::SimulatedAnnealing sa({}, seed);
    mvcom::baselines::DynamicProgramming dp;
    mvcom::baselines::WhaleOptimization woa({}, seed);
    double best_baseline = -1e300;
    for (auto* solver : std::vector<mvcom::baselines::Solver*>{
             &sa, &dp, &woa}) {
      const auto r = solver->solve(inst);
      if (r.feasible) best_baseline = std::max(best_baseline, r.utility);
    }
    best_baseline_total += best_baseline;
  }
  EXPECT_GE(se_total, 0.98 * best_baseline_total);
}

TEST(IntegrationTest, ElasticoReportsFeedTheScheduler) {
  // Full closed loop: run an Elastico epoch, feed the committed committees'
  // reports into the SE scheduler, and use the selection as the final-
  // consensus shard set of a second epoch run.
  mvcom::sharding::ElasticoConfig config;
  config.num_nodes = 96;
  config.committee_size = 6;
  config.committee_bits = 3;
  config.link_latency_mean = SimTime(1.0);
  config.pbft.verification_mean = SimTime(0.2);
  mvcom::sharding::ElasticoNetwork network(config, Rng(7));

  Rng rng(8);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 128;
  tc.target_total_txs = 128'000;
  const auto trace = mvcom::txn::generate_trace(tc, rng);

  const auto outcome = network.run_epoch(
      trace, [](const std::vector<mvcom::sharding::CommitteeOutcome>&
                    committed) {
        std::vector<mvcom::txn::ShardReport> reports;
        for (const auto& c : committed) {
          reports.push_back({c.committee_id, c.tx_count,
                             c.formation_latency.seconds(),
                             c.consensus_latency.seconds()});
        }
        if (reports.size() < 2) {
          std::vector<std::uint32_t> all;
          for (const auto& c : committed) all.push_back(c.committee_id);
          return all;
        }
        std::uint64_t total = 0;
        for (const auto& r : reports) total += r.tx_count;
        const auto inst = EpochInstance::from_reports(
            reports, 1.5, (total * 7) / 10, reports.size() / 2);
        SeParams params;
        params.threads = 4;
        params.max_iterations = 2000;
        SeScheduler scheduler(inst, params, 99);
        const auto result = scheduler.run();
        std::vector<std::uint32_t> ids;
        if (result.feasible) {
          for (std::size_t i = 0; i < result.best.size(); ++i) {
            if (result.best[i]) {
              ids.push_back(inst.committees()[i].id);
            }
          }
        }
        return ids;
      });

  // The MVCom selection must be a subset of the committed committees and
  // respect the 70% capacity.
  std::uint64_t committed_total = 0;
  for (const auto& c : outcome.committees) {
    if (c.committed) committed_total += c.tx_count;
  }
  EXPECT_LE(outcome.final_block_txs, (committed_total * 7) / 10 + 1);
  for (const std::uint32_t id : outcome.selected) {
    EXPECT_TRUE(outcome.committees.at(id).committed);
  }
}

TEST(IntegrationTest, ValuableDegreeOrderingHoldsOnAverage) {
  // Fig. 10's shape: SE's valuable degree tops SA and both top DP/WOA.
  // Checked on a mid-size instance, averaged over seeds, with slack — this
  // is a stochastic ordering, not a per-run guarantee.
  Rng rng(3);
  const auto trace = mvcom::txn::generate_trace({}, rng);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 60;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);

  double se_vd = 0.0;
  double dp_vd = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng epoch_rng(seed + 10);
    const auto workload = gen.epoch(epoch_rng);
    const auto inst = EpochInstance::from_reports(workload.reports, 1.5,
                                                  48'000, 30);
    SeParams params;
    params.threads = 8;
    params.max_iterations = 4000;
    SeScheduler se(inst, params, seed);
    const auto se_result = se.run();
    ASSERT_TRUE(se_result.feasible);
    se_vd += se_result.valuable_degree;

    mvcom::baselines::DynamicProgramming dp;
    const auto dp_result = dp.solve(inst);
    ASSERT_TRUE(dp_result.feasible);
    dp_vd += dp_result.valuable_degree;
  }
  // SE optimizes utility, whose age term steers it toward fresher shards,
  // so its TX-per-age ratio should not be dominated by the age-blind DP.
  EXPECT_GT(se_vd, 0.0);
  EXPECT_GT(dp_vd, 0.0);
}

}  // namespace
