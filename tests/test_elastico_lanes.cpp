// Determinism matrix for the lane-parallel Elastico epoch (DESIGN.md §12).
//
// The contract under test: ElasticoConfig::lane_workers changes only the
// wall-clock shape of stage 2/3 — never any result. Every lane draws from an
// RNG substream forked in committee order before any lane runs, and lane
// outcomes merge back in committee order, so serial (lane_workers = 0) and
// pool-backed runs with any worker count are bitwise-identical: the same
// per-committee formation/consensus latencies (compared as doubles, i.e.
// bit-exact), the same commit flags and view-change counts, the same final
// block, and the same DES event-order digest.
//
// The same runs feed a digest file when MVCOM_DES_DETERMINISM_DIGEST is set:
// SHA-256 over every epoch field plus the simulator's event-order digest.
// CI runs this test in MVCOM_OBS=ON and OBS=OFF builds and diffs the two
// files, extending the bitwise guarantee across observability builds (which
// no single binary can check alone).

#include "sharding/elastico.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::sharding::CommitteeOutcome;
using mvcom::sharding::ElasticoConfig;
using mvcom::sharding::ElasticoNetwork;
using mvcom::sharding::EpochOutcome;
using mvcom::txn::generate_trace;
using mvcom::txn::Trace;
using mvcom::txn::TraceGeneratorConfig;

Trace lane_trace() {
  Rng rng(7);
  TraceGeneratorConfig tc;
  tc.num_blocks = 96;
  tc.target_total_txs = 96'000;
  return generate_trace(tc, rng);
}

ElasticoConfig lane_config() {
  ElasticoConfig config;
  config.num_nodes = 128;
  config.committee_size = 6;
  config.committee_bits = 3;  // 8 committees: 7 member + 1 final
  config.pow_expected_solve = SimTime(600.0);
  config.link_latency_mean = SimTime(1.0);
  config.pbft.verification_mean = SimTime(0.2);
  config.pbft.view_change_timeout = SimTime(120.0);
  return config;
}

/// Runs `epochs` consecutive epochs from one seed at the given worker count
/// and returns every outcome (epoch chaining exercises the randomness
/// refresh under lanes too).
std::vector<EpochOutcome> run_epochs(const ElasticoConfig& base,
                                     std::size_t lane_workers,
                                     std::size_t epochs, const Trace& trace) {
  ElasticoConfig config = base;
  config.lane_workers = lane_workers;
  ElasticoNetwork network(config, Rng(4242));
  std::vector<EpochOutcome> out;
  out.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    out.push_back(network.run_epoch(trace));
  }
  return out;
}

/// Bit-exact comparison — EXPECT_EQ on doubles is exact equality, which is
/// precisely the contract (not EXPECT_NEAR).
void expect_identical(const EpochOutcome& a, const EpochOutcome& b) {
  ASSERT_EQ(a.committees.size(), b.committees.size());
  for (std::size_t c = 0; c < a.committees.size(); ++c) {
    SCOPED_TRACE("committee " + std::to_string(c));
    const CommitteeOutcome& ca = a.committees[c];
    const CommitteeOutcome& cb = b.committees[c];
    EXPECT_EQ(ca.committee_id, cb.committee_id);
    EXPECT_EQ(ca.member_count, cb.member_count);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.formation_latency.seconds()),
              std::bit_cast<std::uint64_t>(cb.formation_latency.seconds()));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.consensus_latency.seconds()),
              std::bit_cast<std::uint64_t>(cb.consensus_latency.seconds()));
    EXPECT_EQ(ca.committed, cb.committed);
    EXPECT_EQ(ca.view_changes, cb.view_changes);
    EXPECT_EQ(ca.tx_count, cb.tx_count);
  }
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.final_committed, b.final_committed);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.final_consensus_latency.seconds()),
            std::bit_cast<std::uint64_t>(b.final_consensus_latency.seconds()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.epoch_makespan.seconds()),
            std::bit_cast<std::uint64_t>(b.epoch_makespan.seconds()));
  EXPECT_EQ(a.final_block_txs, b.final_block_txs);
  EXPECT_EQ(a.next_epoch_randomness, b.next_epoch_randomness);
  EXPECT_EQ(a.event_order_digest, b.event_order_digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

std::string outcome_digest(const std::vector<EpochOutcome>& epochs) {
  mvcom::crypto::Sha256 h;
  const auto absorb_u64 = [&h](std::uint64_t v) {
    h.update(std::string_view(reinterpret_cast<const char*>(&v), sizeof v));
  };
  const auto absorb_time = [&](SimTime t) {
    absorb_u64(std::bit_cast<std::uint64_t>(t.seconds()));
  };
  for (const EpochOutcome& o : epochs) {
    for (const CommitteeOutcome& c : o.committees) {
      absorb_u64(c.committee_id);
      absorb_u64(c.member_count);
      absorb_time(c.formation_latency);
      absorb_time(c.consensus_latency);
      absorb_u64(c.committed ? 1 : 0);
      absorb_u64(c.view_changes);
      absorb_u64(c.tx_count);
    }
    for (const std::uint32_t id : o.selected) absorb_u64(id);
    absorb_u64(o.final_committed ? 1 : 0);
    absorb_time(o.final_consensus_latency);
    absorb_time(o.epoch_makespan);
    absorb_u64(o.final_block_txs);
    h.update(o.next_epoch_randomness);
    absorb_u64(o.event_order_digest);
    absorb_u64(o.events_executed);
  }
  return mvcom::crypto::to_hex(h.finalize());
}

void run_matrix(const std::string& label, const ElasticoConfig& config,
                std::ofstream& digest_out) {
  SCOPED_TRACE(label);
  constexpr std::size_t kEpochs = 2;
  const Trace trace = lane_trace();
  const std::vector<EpochOutcome> serial =
      run_epochs(config, 0, kEpochs, trace);
  // An epoch must actually do work for the matrix to mean anything.
  std::size_t committed = 0;
  for (const CommitteeOutcome& c : serial.front().committees) {
    if (c.committed) ++committed;
  }
  EXPECT_GT(committed, 0u) << "degenerate epoch: nothing committed";
  EXPECT_GT(serial.front().events_executed, 0u);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("lane_workers=" + std::to_string(workers));
    const std::vector<EpochOutcome> pooled =
        run_epochs(config, workers, kEpochs, trace);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t e = 0; e < serial.size(); ++e) {
      SCOPED_TRACE("epoch " + std::to_string(e));
      expect_identical(serial[e], pooled[e]);
    }
  }
  if (digest_out.is_open()) {
    digest_out << label << " " << outcome_digest(serial) << "\n";
  }
}

TEST(ElasticoLaneMatrix, WorkerCountsAndSerialAgreeBitwise) {
  const char* digest_path = std::getenv("MVCOM_DES_DETERMINISM_DIGEST");
  std::ofstream digest_out;
  if (digest_path != nullptr && *digest_path != '\0') {
    digest_out.open(digest_path, std::ios::trunc);
    ASSERT_TRUE(digest_out) << "cannot open " << digest_path;
  }

  // Baseline: healthy network, closed-form overlay.
  run_matrix("baseline", lane_config(), digest_out);

  // Failures + message loss: the lossy code paths (drops, view changes,
  // horizon timeouts) must be just as order-independent.
  {
    ElasticoConfig config = lane_config();
    config.node_failure_probability = 0.10;
    config.message_loss_probability = 0.02;
    run_matrix("faulty", config, digest_out);
  }

  // Message-level overlay: stage 2 runs the real directory exchange on its
  // own per-lane fabric (a second simulator per lane).
  {
    ElasticoConfig config = lane_config();
    config.message_level_overlay = true;
    run_matrix("message_overlay", config, digest_out);
  }
}

TEST(ElasticoLaneMatrix, LanedEpochMatchesStructuralExpectations) {
  // Sanity independent of the serial reference: a pooled run on its own
  // still produces a committed final block and a populated digest.
  ElasticoConfig config = lane_config();
  config.lane_workers = 4;
  ElasticoNetwork network(config, Rng(99));
  const EpochOutcome outcome = network.run_epoch(lane_trace());
  EXPECT_FALSE(outcome.selected.empty());
  EXPECT_TRUE(outcome.final_committed);
  EXPECT_GT(outcome.epoch_makespan, SimTime::zero());
  EXPECT_NE(outcome.event_order_digest, 0u);
  EXPECT_GT(outcome.events_executed, 0u);
}

TEST(ElasticoLaneMatrix, AttachedObservabilityNeverChangesResults) {
  // Live metrics + trace sinks shared by 8 concurrent lanes: counter
  // updates and the trace-ring append are thread-safe, and — the contract —
  // attaching them must not perturb a single scheduled event. Run under
  // TSan via tools/run_tsan_tests.sh, this is also the race check for
  // cross-lane obs emission.
  ElasticoConfig config = lane_config();
  const Trace trace = lane_trace();
  const std::vector<EpochOutcome> plain = run_epochs(config, 8, 2, trace);

  mvcom::obs::MetricsRegistry registry;
  mvcom::obs::TraceRecorder recorder;
  ElasticoConfig attached_config = config;
  attached_config.lane_workers = 8;
  ElasticoNetwork network(attached_config, Rng(4242));
  network.set_obs(mvcom::obs::ObsContext(&registry, &recorder));
  std::vector<EpochOutcome> attached;
  attached.push_back(network.run_epoch(trace));
  attached.push_back(network.run_epoch(trace));

  for (std::size_t e = 0; e < plain.size(); ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    expect_identical(plain[e], attached[e]);
  }
}

}  // namespace
