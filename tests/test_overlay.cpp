// Tests for the message-level overlay configuration (Elastico stage 2) and
// the commit-reveal randomness beacon (stage 5).

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sharding/overlay.hpp"
#include "sharding/randomness.hpp"
#include "sim/simulator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::net::Network;
using mvcom::sharding::run_commit_reveal_beacon;
using mvcom::sharding::run_overlay_configuration;
using mvcom::sim::Simulator;

struct Fabric {
  explicit Fabric(std::size_t nodes, std::uint64_t seed = 1)
      : network(simulator, Rng(seed),
                std::make_shared<mvcom::net::FixedLatency>(SimTime(1.0)),
                nodes) {}
  Simulator simulator;
  Network network;
};

std::vector<mvcom::net::NodeId> node_range(std::size_t n) {
  std::vector<mvcom::net::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

// --- overlay ------------------------------------------------------------------

TEST(OverlayTest, EveryParticipantGetsConfigured) {
  Fabric f(8);
  const auto members = node_range(8);
  std::vector<SimTime> ready(8, SimTime(10.0));
  const auto result = run_overlay_configuration(
      f.simulator, f.network, members, ready, /*directory=*/0, SimTime(0.5));
  EXPECT_FALSE(result.directory_complete.is_infinite());
  for (const SimTime t : result.configured_at) {
    EXPECT_FALSE(t.is_infinite());
    EXPECT_GT(t.seconds(), 10.0);  // after readiness
  }
}

TEST(OverlayTest, DirectoryWaitsForTheLastJoiner) {
  Fabric f(4);
  const auto members = node_range(4);
  std::vector<SimTime> ready{SimTime(0.0), SimTime(0.0), SimTime(0.0),
                             SimTime(100.0)};
  const auto result = run_overlay_configuration(
      f.simulator, f.network, members, ready, 0, SimTime(0.1));
  // Completion strictly after the straggler's JOIN could even be sent.
  EXPECT_GT(result.directory_complete.seconds(), 100.0);
}

TEST(OverlayTest, ProcessingCostScalesLinearlyWithMembership) {
  // Fig. 2(a)'s driver: doubling the identities roughly doubles the
  // directory's sequential verification span.
  auto completion = [](std::size_t n) {
    Fabric f(n, 7);
    std::vector<SimTime> ready(n, SimTime::zero());
    return run_overlay_configuration(f.simulator, f.network, node_range(n),
                                     ready, 0, SimTime(1.0))
        .directory_complete.seconds();
  };
  const double small = completion(10);
  const double large = completion(40);
  EXPECT_GT(large, small + 25.0);  // ≥ 30 extra identities × 1 s, minus slack
}

TEST(OverlayTest, FailedMemberNeverConfigures) {
  Fabric f(5);
  f.network.set_failed(3, true);
  const auto members = node_range(5);
  std::vector<SimTime> ready(5, SimTime::zero());
  const auto result = run_overlay_configuration(
      f.simulator, f.network, members, ready, 0, SimTime(0.1));
  // The directory never hears node 3, so nobody completes.
  EXPECT_TRUE(result.directory_complete.is_infinite());
  EXPECT_TRUE(result.configured_at[3].is_infinite());
}

TEST(OverlayTest, RejectsMismatchedInputs) {
  Fabric f(3);
  EXPECT_THROW(run_overlay_configuration(f.simulator, f.network, node_range(3),
                                         {SimTime(0.0)}, 0, SimTime(0.1)),
               std::invalid_argument);
}

// --- randomness beacon ----------------------------------------------------------

TEST(BeaconTest, AllRevealsProduceRandomness) {
  Fabric f(6);
  Rng rng(5);
  const auto result = run_commit_reveal_beacon(
      f.simulator, f.network, rng, node_range(6), std::vector<bool>(6, false));
  EXPECT_EQ(result.commits, 6u);
  EXPECT_EQ(result.reveals, 6u);
  EXPECT_EQ(result.randomness.size(), 64u);
}

TEST(BeaconTest, OutputDependsOnEveryContribution) {
  // Different member entropy (different engine state) => different beacon.
  Fabric f1(4), f2(4);
  Rng rng_a(10);
  Rng rng_b(11);
  const auto a = run_commit_reveal_beacon(f1.simulator, f1.network, rng_a,
                                          node_range(4),
                                          std::vector<bool>(4, false));
  const auto b = run_commit_reveal_beacon(f2.simulator, f2.network, rng_b,
                                          node_range(4),
                                          std::vector<bool>(4, false));
  EXPECT_NE(a.randomness, b.randomness);
}

TEST(BeaconTest, DeterministicPerSeed) {
  Fabric f1(4), f2(4);
  Rng rng_a(10);
  Rng rng_b(10);
  const auto a = run_commit_reveal_beacon(f1.simulator, f1.network, rng_a,
                                          node_range(4),
                                          std::vector<bool>(4, false));
  const auto b = run_commit_reveal_beacon(f2.simulator, f2.network, rng_b,
                                          node_range(4),
                                          std::vector<bool>(4, false));
  EXPECT_EQ(a.randomness, b.randomness);
}

TEST(BeaconTest, WithholderIsExcludedNotFatal) {
  Fabric f(5);
  Rng rng(6);
  std::vector<bool> withholding(5, false);
  withholding[2] = true;
  const auto result = run_commit_reveal_beacon(f.simulator, f.network, rng,
                                               node_range(5), withholding);
  EXPECT_EQ(result.commits, 5u);
  EXPECT_EQ(result.reveals, 4u);
  EXPECT_FALSE(result.revealed[2]);
  EXPECT_FALSE(result.randomness.empty());
}

TEST(BeaconTest, WithholdingChangesTheOutput) {
  // The last-revealer caveat, demonstrated rather than hidden: dropping one
  // contribution yields a different beacon value.
  auto run_with = [](bool withhold) {
    Fabric f(4, 3);
    Rng rng(9);
    std::vector<bool> withholding(4, false);
    withholding[1] = withhold;
    return run_commit_reveal_beacon(f.simulator, f.network, rng,
                                    node_range(4), withholding)
        .randomness;
  };
  EXPECT_NE(run_with(false), run_with(true));
}

TEST(BeaconTest, FailedMemberCommitNeverArrives) {
  Fabric f(4);
  f.network.set_failed(3, true);
  Rng rng(8);
  const auto result = run_commit_reveal_beacon(
      f.simulator, f.network, rng, node_range(4), std::vector<bool>(4, false));
  EXPECT_EQ(result.commits, 3u);
  EXPECT_LE(result.reveals, 3u);
  EXPECT_FALSE(result.randomness.empty());
}

}  // namespace
