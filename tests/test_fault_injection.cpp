// Tests for the FaultPlan chaos harness: randomized-plan determinism,
// scripted single-fault scenarios (misreport quarantine, crash detection,
// crash-recover rejoin), a randomized-schedule property sweep asserting the
// "never infeasible while a feasible selection exists" acceptance criterion,
// and the end-to-end Elastico→PBFT→supervisor path.

#include "mvcom/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sharding/elastico.hpp"
#include "sharding/verification.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::core::ChaosCommittee;
using mvcom::core::ChaosConfig;
using mvcom::core::ChaosReport;
using mvcom::core::chaos_committees_from_reports;
using mvcom::core::FaultEvent;
using mvcom::core::FaultKind;
using mvcom::core::FaultPlan;
using mvcom::core::FaultPlanConfig;
using mvcom::core::run_chaos_epoch;

/// Calibrated-workload committees (the paper's fast path, §VI-A).
std::vector<ChaosCommittee> workload_committees(std::size_t n,
                                                std::uint64_t seed) {
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 256;
  tc.target_total_txs = 256'000;
  Rng trace_rng(seed);
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = n;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  Rng rng(seed + 1);
  return chaos_committees_from_reports(gen.epoch(rng).reports);
}

ChaosConfig chaos_config(std::size_t n, std::uint64_t capacity) {
  ChaosConfig c;
  c.supervisor.scheduler.capacity = capacity;
  c.supervisor.scheduler.expected_committees = n;
  c.supervisor.scheduler.se.threads = 2;
  c.ddl_seconds = 1800.0;
  return c;
}

bool contains(const std::vector<std::uint32_t>& ids, std::uint32_t id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

TEST(FaultPlanTest, RandomizedPlanIsDeterministicSortedAndComplete) {
  FaultPlanConfig config;
  config.crashes = 2;
  config.crash_recovers = 2;
  config.stragglers = 2;
  config.misreports = 2;
  config.equivocations = 1;
  config.loss_bursts = 1;
  Rng a(7);
  Rng b(7);
  const FaultPlan plan_a = FaultPlan::randomized(config, 12, a);
  const FaultPlan plan_b = FaultPlan::randomized(config, 12, b);
  ASSERT_EQ(plan_a.events.size(), 10u);
  ASSERT_EQ(plan_b.events.size(), plan_a.events.size());
  for (std::size_t i = 0; i < plan_a.events.size(); ++i) {
    EXPECT_EQ(plan_a.events[i].kind, plan_b.events[i].kind);
    EXPECT_EQ(plan_a.events[i].committee_id, plan_b.events[i].committee_id);
    EXPECT_DOUBLE_EQ(plan_a.events[i].at_seconds, plan_b.events[i].at_seconds);
    EXPECT_DOUBLE_EQ(plan_a.events[i].magnitude, plan_b.events[i].magnitude);
    EXPECT_LT(plan_a.events[i].committee_id, 12u);
    EXPECT_GE(plan_a.events[i].at_seconds, 0.0);
    EXPECT_LT(plan_a.events[i].at_seconds, config.horizon_seconds);
    if (i > 0) {
      EXPECT_GE(plan_a.events[i].at_seconds, plan_a.events[i - 1].at_seconds);
    }
  }
}

TEST(FaultPlanTest, ChaosCommitteesCarryVerifiableSubmissions) {
  const auto committees = workload_committees(10, 3);
  ASSERT_EQ(committees.size(), 10u);
  for (const ChaosCommittee& c : committees) {
    EXPECT_FALSE(mvcom::sharding::verify_submission(c.submission).has_value());
    EXPECT_GT(c.submission.claimed_tx_count, 0u);
    EXPECT_GT(c.formation_latency, 0.0);
  }
}

TEST(ChaosEpochTest, ScriptedMisreportIsQuarantinedAndExcluded) {
  const auto committees = workload_committees(10, 4);
  FaultPlan plan;
  // t = 1 s is before every two-phase delivery, so the inflated claim is
  // the committee's *only* submission — it must never be admitted.
  plan.events.push_back(
      {FaultKind::kMisreport, committees[4].submission.committee_id, 1.0, 0.0,
       3.0});
  const ChaosReport report =
      run_chaos_epoch(committees, plan, chaos_config(10, 10'000), 11);
  const std::uint32_t victim = committees[4].submission.committee_id;
  EXPECT_GE(report.quarantine_events, 1u);
  EXPECT_TRUE(contains(report.quarantined_ids, victim) ||
              contains(report.banned_ids, victim));
  EXPECT_FALSE(contains(report.final_decision.decision.permitted_ids, victim));
  EXPECT_TRUE(report.final_decision.decision.feasible);
  EXPECT_FALSE(report.infeasible_while_feasible);
}

TEST(ChaosEpochTest, ScriptedCrashIsDetectedAndExcluded) {
  const auto committees = workload_committees(10, 5);
  const std::uint32_t victim = committees[2].submission.committee_id;
  FaultPlan plan;
  plan.events.push_back({FaultKind::kCrash, victim, 50.0, 0.0, 1.0});
  const ChaosReport report =
      run_chaos_epoch(committees, plan, chaos_config(10, 10'000), 12);
  EXPECT_GE(report.failures_detected, 1u);
  // Crashed at 50 s, before its submission could even be sent: it is
  // dropped at send time and never appears in the decision.
  EXPECT_GE(report.dropped_submissions, 1u);
  EXPECT_FALSE(contains(report.final_decision.decision.permitted_ids, victim));
  EXPECT_TRUE(report.final_decision.decision.feasible);
  EXPECT_FALSE(report.infeasible_while_feasible);
  EXPECT_FALSE(report.timeline.empty());
}

TEST(ChaosEpochTest, CrashRecoverIsReadmittedByTheMonitor) {
  const auto committees = workload_committees(10, 6);
  const std::uint32_t victim = committees[7].submission.committee_id;
  // Crash strictly after the victim's submission was delivered (so a
  // FailureRecord exists), and leave room before the DDL for the
  // backed-off probes to see it return.
  const double delivered =
      committees[7].formation_latency + committees[7].consensus_latency;
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kCrashRecover, victim, delivered + 100.0, 200.0, 1.0});
  ChaosConfig config = chaos_config(10, 10'000);
  config.ddl_seconds = delivered + 1200.0;
  const ChaosReport report = run_chaos_epoch(committees, plan, config, 13);
  EXPECT_GE(report.failures_detected, 1u);
  EXPECT_GE(report.recoveries_detected, 1u);
  EXPECT_TRUE(report.final_decision.decision.feasible);
  EXPECT_FALSE(report.infeasible_while_feasible);
  // Theorem-2 accounting exists for the detected failure and held.
  ASSERT_FALSE(report.failures.empty());
  EXPECT_TRUE(report.final_decision.theorem2_respected);
}

TEST(ChaosEpochTest, RunsAreDeterministicPerSeed) {
  const auto committees = workload_committees(10, 7);
  FaultPlanConfig pc;
  Rng plan_rng(21);
  const FaultPlan plan = FaultPlan::randomized(pc, committees.size(), plan_rng);
  const ChaosConfig config = chaos_config(10, 10'000);
  const ChaosReport a = run_chaos_epoch(committees, plan, config, 31);
  const ChaosReport b = run_chaos_epoch(committees, plan, config, 31);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline[i].utility, b.timeline[i].utility);
    EXPECT_EQ(a.timeline[i].feasible, b.timeline[i].feasible);
  }
  EXPECT_EQ(a.failures_detected, b.failures_detected);
  EXPECT_EQ(a.recoveries_detected, b.recoveries_detected);
  EXPECT_DOUBLE_EQ(a.final_decision.decision.utility,
                   b.final_decision.decision.utility);
}

TEST(ChaosEpochTest, RandomizedSchedulesNeverReportInfeasibleWhileFeasible) {
  // The issue's acceptance criterion, swept across randomized fault
  // schedules: crash + misreport + straggler (and friends) must never make
  // the ladder answer "infeasible" while a feasible selection exists.
  const auto committees = workload_committees(12, 8);
  std::uint64_t total = 0;
  for (const auto& c : committees) total += c.submission.claimed_tx_count;
  FaultPlanConfig pc;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.stragglers = 1;
  pc.misreports = 1;
  pc.equivocations = 1;
  pc.loss_bursts = 1;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng plan_rng(seed * 1000);
    const FaultPlan plan =
        FaultPlan::randomized(pc, committees.size(), plan_rng);
    // Generous capacity: any N_min live committees are feasible, so the
    // run-level criterion exercises the N_min leg of the ladder.
    const ChaosReport report =
        run_chaos_epoch(committees, plan, chaos_config(12, total), seed);
    EXPECT_FALSE(report.infeasible_while_feasible) << "seed " << seed;
    EXPECT_TRUE(report.final_decision.theorem2_respected) << "seed " << seed;
    EXPECT_TRUE(report.final_decision.decision.feasible) << "seed " << seed;
  }
}

TEST(ChaosEpochTest, BindingCapacitySweepAlsoHoldsTheCriterion) {
  // Same sweep with the paper's binding capacity (Ĉ = 1000·|I| against
  // ~1000-TX shards) so SE bootstrap and the repair tiers actually engage.
  const auto committees = workload_committees(12, 9);
  FaultPlanConfig pc;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.stragglers = 1;
  pc.misreports = 1;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng plan_rng(seed * 777);
    const FaultPlan plan =
        FaultPlan::randomized(pc, committees.size(), plan_rng);
    const ChaosReport report =
        run_chaos_epoch(committees, plan, chaos_config(12, 12'000), seed);
    EXPECT_FALSE(report.infeasible_while_feasible) << "seed " << seed;
    EXPECT_TRUE(report.final_decision.theorem2_respected) << "seed " << seed;
  }
}

TEST(ChaosEpochTest, EventAimedAtDepartedVictimIsSkippedNotMisfired) {
  // Satellite regression: victims resolve against the LIVE membership at
  // fire time. A crash aimed (by id) at a committee that already left must
  // be skipped and counted — not applied to a stale index.
  const auto committees = workload_committees(10, 14);
  const std::uint32_t departed = committees[3].submission.committee_id;
  FaultPlan plan;
  FaultEvent leave;
  leave.kind = FaultKind::kLeave;
  leave.committee_id = departed;
  leave.at_seconds = 10.0;
  plan.events.push_back(leave);
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.committee_id = departed;  // no longer live when this fires
  crash.at_seconds = 100.0;
  plan.events.push_back(crash);
  ChaosConfig config = chaos_config(10, 10'000);
  config.supervisor.scheduler.n_max_fraction = 1.0;  // admit all 9 live
  const ChaosReport report = run_chaos_epoch(committees, plan, config, 41);
  EXPECT_EQ(report.leaves, 1u);
  EXPECT_EQ(report.skipped_events, 1u);
  // Nobody else got hit: every remaining committee still delivered.
  EXPECT_EQ(report.admitted, committees.size() - 1);
  EXPECT_FALSE(contains(report.final_decision.decision.permitted_ids,
                        departed));
  EXPECT_FALSE(report.infeasible_while_feasible);
}

TEST(ChaosEpochTest, LiveRankVictimsResolveAgainstPostChurnMembership) {
  // kByLiveRank rank r means "the r-th live member in join order AT FIRE
  // TIME". After committees[1] leaves, rank 1 is committees[2] — a stale
  // epoch-start resolution would have crashed committees[1] again.
  const auto committees = workload_committees(10, 15);
  FaultPlan plan;
  FaultEvent leave;
  leave.kind = FaultKind::kLeave;
  leave.committee_id = committees[1].submission.committee_id;
  leave.at_seconds = 10.0;
  plan.events.push_back(leave);
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.victim = FaultEvent::Victim::kByLiveRank;
  crash.committee_id = 1;  // live rank, not an id
  crash.at_seconds = 50.0;
  plan.events.push_back(crash);
  const ChaosReport report =
      run_chaos_epoch(committees, plan, chaos_config(10, 10'000), 42);
  EXPECT_EQ(report.leaves, 1u);
  EXPECT_EQ(report.skipped_events, 0u);
  // The crash landed on committees[2] before its submission went out.
  EXPECT_GE(report.dropped_submissions, 1u);
  EXPECT_FALSE(contains(report.final_decision.decision.permitted_ids,
                        committees[2].submission.committee_id));
  // Both churn victims are out; everyone else delivered.
  EXPECT_EQ(report.admitted, committees.size() - 2);
  // A rank beyond the live membership is skipped, never clamped.
  FaultEvent overflow = crash;
  overflow.committee_id = 64;
  overflow.at_seconds = 60.0;
  FaultPlan plan2 = plan;
  plan2.events.push_back(overflow);
  const ChaosReport report2 =
      run_chaos_epoch(committees, plan2, chaos_config(10, 10'000), 42);
  EXPECT_EQ(report2.skipped_events, 1u);
}

TEST(ChaosEpochTest, ForgerySilentlyReplacesBeforeDeliveryAndStrikesAfter) {
  // The two faces of kForgeSubmission that targeted corruption straddles:
  // before the honest report is delivered the forgery REPLACES it (the only
  // submission that ever arrives verifies, so admission cannot object);
  // after delivery it lands as a second verified claim and is struck as an
  // equivocation — the detectable signal the risk policy feeds on.
  const auto committees = workload_committees(10, 16);
  const std::uint32_t victim = committees[5].submission.committee_id;
  const std::uint64_t honest_claim = committees[5].submission.claimed_tx_count;

  FaultPlan silent;
  silent.events.push_back(
      {FaultKind::kForgeSubmission, victim, 1.0, 0.0, 3.0});
  const ChaosReport pre =
      run_chaos_epoch(committees, silent, chaos_config(10, 50'000), 43);
  EXPECT_FALSE(contains(pre.quarantined_ids, victim));
  EXPECT_FALSE(contains(pre.banned_ids, victim));
  bool saw_inflated = false;
  for (const auto& r : pre.final_reports) {
    if (r.committee_id == victim) {
      EXPECT_GT(r.tx_count, honest_claim);  // the forged s_i was admitted
      saw_inflated = true;
    }
  }
  EXPECT_TRUE(saw_inflated);

  FaultPlan late;
  late.events.push_back(
      {FaultKind::kForgeSubmission, victim, 1700.0, 0.0, 3.0});
  const ChaosReport post =
      run_chaos_epoch(committees, late, chaos_config(10, 50'000), 43);
  EXPECT_GE(post.quarantine_events, 1u);
  EXPECT_TRUE(contains(post.quarantined_ids, victim) ||
              contains(post.banned_ids, victim));
  EXPECT_FALSE(
      contains(post.final_decision.decision.permitted_ids, victim));
}

TEST(ChaosEpochTest, JoinAdmitsReserveCommitteeAndOverflowSlotIsSkipped) {
  const auto all = workload_committees(12, 17);
  const std::vector<ChaosCommittee> initial(all.begin(), all.begin() + 10);
  ChaosConfig config = chaos_config(12, 20'000);
  config.supervisor.scheduler.n_max_fraction = 1.0;  // room for the joiner
  config.reserve.assign(all.begin() + 10, all.end());
  const std::uint32_t joiner = all[10].submission.committee_id;
  FaultPlan plan;
  FaultEvent join;
  join.kind = FaultKind::kJoin;
  join.committee_id = 0;  // reserve slot index, not a committee id
  join.at_seconds = 700.0;
  plan.events.push_back(join);
  FaultEvent overflow = join;
  overflow.committee_id = 9;  // only 2 reserve slots exist
  overflow.at_seconds = 710.0;
  plan.events.push_back(overflow);
  const ChaosReport report = run_chaos_epoch(initial, plan, config, 44);
  EXPECT_EQ(report.joins, 1u);
  EXPECT_EQ(report.skipped_events, 1u);
  bool joiner_reported = false;
  for (const auto& r : report.final_reports) {
    joiner_reported |= r.committee_id == joiner;
  }
  EXPECT_TRUE(joiner_reported);
  EXPECT_FALSE(report.infeasible_while_feasible);
}

TEST(ChaosEpochTest, ElasticoEpochFeedsTheChaosHarnessEndToEnd) {
  // End-to-end: a real Elastico epoch (PoW formation → PBFT per committee)
  // produces the shard reports, which become verifiable submissions driven
  // through the supervised chaos epoch.
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 128;
  tc.target_total_txs = 128'000;
  Rng trace_rng(1);
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);

  mvcom::sharding::ElasticoConfig ec;
  ec.num_nodes = 96;
  ec.committee_size = 6;
  ec.committee_bits = 3;  // 8 committees: 7 member + 1 final
  ec.link_latency_mean = mvcom::common::SimTime(1.0);
  ec.pbft.verification_mean = mvcom::common::SimTime(0.2);
  mvcom::sharding::ElasticoNetwork network(ec, Rng(5));
  const auto outcome = network.run_epoch(trace);
  const auto reports = outcome.reports();
  ASSERT_GE(reports.size(), 4u);

  const auto committees = chaos_committees_from_reports(reports);
  std::uint64_t total = 0;
  double max_latency = 0.0;
  for (const auto& c : committees) {
    total += c.submission.claimed_tx_count;
    max_latency = std::max(
        max_latency, c.formation_latency + c.consensus_latency);
  }
  ChaosConfig config = chaos_config(committees.size(), total);
  config.ddl_seconds = max_latency + 600.0;  // all deliveries + detection

  FaultPlan plan;
  plan.events.push_back({FaultKind::kCrash,
                         committees[0].submission.committee_id,
                         max_latency + 10.0, 0.0, 1.0});
  const ChaosReport report = run_chaos_epoch(committees, plan, config, 17);
  EXPECT_GE(report.admitted, committees.size() - 1);
  EXPECT_GE(report.failures_detected, 1u);
  EXPECT_TRUE(report.final_decision.decision.feasible);
  EXPECT_FALSE(report.infeasible_while_feasible);
}

}  // namespace
