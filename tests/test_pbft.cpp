// Tests for the message-level PBFT simulation: liveness under crash faults,
// view changes on leader failure, and — the property PBFT exists for —
// safety under an equivocating leader.

#include "consensus/pbft.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::consensus::FaultMode;
using mvcom::consensus::PbftCluster;
using mvcom::consensus::PbftConfig;
using mvcom::consensus::PbftResult;
using mvcom::crypto::Digest;
using mvcom::crypto::Sha256;
using mvcom::net::Network;
using mvcom::sim::Simulator;

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 1)
      : network(simulator, Rng(seed),
                std::make_shared<mvcom::net::UniformLatency>(SimTime(0.5),
                                                             SimTime(1.5)),
                n) {
    std::vector<mvcom::net::NodeId> members(n);
    std::iota(members.begin(), members.end(), 0u);
    PbftConfig config;
    config.view_change_timeout = SimTime(60.0);
    config.verification_mean = SimTime(0.2);
    cluster = std::make_unique<PbftCluster>(simulator, network, config,
                                            Rng(seed + 1), members);
  }

  Simulator simulator;
  Network network;
  std::unique_ptr<PbftCluster> cluster;
};

const Digest kPayload = Sha256::hash("shard-block");

TEST(PbftTest, AllHonestCommitsQuickly) {
  Fixture fx(4);
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.committed_digest, kPayload);
  EXPECT_GT(result.latency.seconds(), 0.0);
  EXPECT_LT(result.latency.seconds(), 60.0);  // no view change needed
  EXPECT_EQ(result.view_changes, 0u);
}

TEST(PbftTest, QuorumOfReplicasRecordsCommitTimes) {
  Fixture fx(7);
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  ASSERT_TRUE(result.committed);
  std::size_t committed = 0;
  for (const SimTime t : result.replica_commit_times) {
    if (!t.is_infinite()) {
      ++committed;
      EXPECT_GE(t.seconds(), 0.0);
    }
  }
  EXPECT_GE(committed, fx.cluster->quorum_size());
}

TEST(PbftTest, ToleratesSilentFollowers) {
  Fixture fx(7);  // f = 2
  fx.cluster->set_fault(3, FaultMode::kSilent);
  fx.cluster->set_fault(5, FaultMode::kSilent);
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.committed_digest, kPayload);
  EXPECT_EQ(result.view_changes, 0u);
}

TEST(PbftTest, SilentLeaderTriggersViewChangeThenCommits) {
  Fixture fx(4);
  fx.cluster->set_fault(0, FaultMode::kSilent);  // view-0 leader crashed
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.committed_digest, kPayload);
  EXPECT_GE(result.view_changes, 1u);
  EXPECT_GT(result.latency.seconds(), 60.0);  // paid at least one timeout
}

TEST(PbftTest, TooManyCrashesPreventCommit) {
  Fixture fx(4);  // f = 1, so 2 crashes break the quorum
  fx.cluster->set_fault(1, FaultMode::kSilent);
  fx.cluster->set_fault(2, FaultMode::kSilent);
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_FALSE(result.committed);
}

TEST(PbftTest, EquivocatingLeaderCannotSplitDecision) {
  // Safety: quorum intersection prevents conflicting commits even when the
  // leader proposes different payloads to different halves; the view change
  // recovers liveness and all committed replicas agree on one digest.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Fixture fx(7, seed);
    fx.cluster->set_fault(0, FaultMode::kEquivocate);
    const PbftResult result = fx.cluster->run_consensus(kPayload);
    if (result.committed) {
      // Every replica that committed must have committed the same digest.
      // (The cluster-level digest is the quorum digest by construction; the
      // per-replica check is the real assertion.)
      EXPECT_TRUE(fx.cluster->committed_digests_consistent())
          << "seed " << seed;
    }
  }
}

TEST(PbftTest, ConsecutiveInstancesOnSameCluster) {
  Fixture fx(4);
  const PbftResult first = fx.cluster->run_consensus(kPayload);
  ASSERT_TRUE(first.committed);
  const Digest second_payload = Sha256::hash("next-shard");
  const PbftResult second = fx.cluster->run_consensus(second_payload);
  EXPECT_TRUE(second.committed);
  EXPECT_EQ(second.committed_digest, second_payload);
}

TEST(PbftTest, SlowerVerificationIncreasesLatency) {
  Fixture fast(4, 7);
  Fixture slow(4, 7);
  for (std::size_t r = 0; r < 4; ++r) slow.cluster->set_speed_factor(r, 10.0);
  const double fast_latency =
      fast.cluster->run_consensus(kPayload).latency.seconds();
  const double slow_latency =
      slow.cluster->run_consensus(kPayload).latency.seconds();
  EXPECT_GT(slow_latency, fast_latency);
}

TEST(PbftTest, RejectsMembersOutsideNetwork) {
  Simulator sim;
  Network net(sim, Rng(1),
              std::make_shared<mvcom::net::FixedLatency>(SimTime(1.0)), 2);
  EXPECT_THROW(PbftCluster(sim, net, PbftConfig{}, Rng(2), {0, 1, 5}),
               std::invalid_argument);
  EXPECT_THROW(PbftCluster(sim, net, PbftConfig{}, Rng(2), {}),
               std::invalid_argument);
}

// Sweep: liveness with exactly f silent replicas for several cluster sizes.
class PbftFaultSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PbftFaultSweep, CommitsWithMaxTolerableSilentFaults) {
  const std::size_t n = GetParam();
  Fixture fx(n, 3);
  const std::size_t f = (n - 1) / 3;
  // Crash the last f replicas (never the view-0 leader, to isolate the
  // crash-tolerance property from view-change liveness).
  for (std::size_t k = 0; k < f; ++k) {
    fx.cluster->set_fault(n - 1 - k, FaultMode::kSilent);
  }
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_TRUE(result.committed) << "n=" << n << " f=" << f;
  EXPECT_EQ(result.committed_digest, kPayload);
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, PbftFaultSweep,
                         ::testing::Values(4, 7, 10, 13, 16));

}  // namespace
