// Multi-process shard fabric (DESIGN.md §17): wire-format round-trips,
// adversarial decode fuzz, the 2-process determinism matrix, and
// SIGKILL-and-replay recovery.
//
// The determinism matrix mirrors tests/test_elastico_lanes.cpp one level up:
// where that suite proves lane_workers (threads) never changes an epoch,
// this one proves worker *processes* don't either — the same scenarios run
// in-process serially and on {1, 2}-worker fabrics, and every outcome field
// is compared bit-for-bit (doubles as their u64 bit patterns). The chaos
// test SIGKILLs a worker mid-epoch and requires the replayed run to land on
// the identical digests, which is the fabric's crash-recovery contract.
//
// The fuzz section follows test_io_fuzz's discipline: decoders must reject
// (never crash, never over-read) truncation at EVERY byte offset, a
// corrupted checksum, an oversized length prefix, and trailing garbage.

#include "fabric/coordinator.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fabric/transport.hpp"
#include "fabric/wire.hpp"
#include "obs/metrics.hpp"
#include "sharding/elastico.hpp"
#include "sharding/lane.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::fabric::CounterDelta;
using mvcom::fabric::FabricConfig;
using mvcom::fabric::FrameType;
using mvcom::fabric::FrameView;
using mvcom::fabric::ParseStatus;
using mvcom::fabric::ProcessFabric;
using mvcom::fabric::ResultBatch;
using mvcom::fabric::TaskBatch;
using mvcom::sharding::CommitteeOutcome;
using mvcom::sharding::ElasticoConfig;
using mvcom::sharding::ElasticoNetwork;
using mvcom::sharding::EpochOutcome;
using mvcom::sharding::LaneResult;
using mvcom::sharding::LaneTask;
using mvcom::txn::generate_trace;
using mvcom::txn::Trace;
using mvcom::txn::TraceGeneratorConfig;

// --- wire round-trips -----------------------------------------------------

LaneTask sample_task() {
  LaneTask task;
  task.committee_id = 5;
  task.member_committees = 7;
  task.armed = true;
  task.message_level_overlay = true;
  task.kernel_mode = mvcom::sim::KernelMode::kBatched;
  task.num_nodes = 128;
  task.link_latency_mean = SimTime(1.25);
  task.message_loss_probability = 0.02;
  task.overlay_identity_processing = SimTime(0.05);
  task.pbft.view_change_timeout = SimTime(120.0);
  task.pbft.verification_mean = SimTime(0.2);
  task.pbft.horizon = SimTime(3600.0);
  task.randomness = "0123abcd";
  task.overlay_seed = 0xdeadbeefcafef00dULL;
  task.net_seed = 0x1122334455667788ULL;
  task.cluster_seed = 0x99aabbccddeeff00ULL;
  task.formation = SimTime(642.75);
  task.shard_txs = 12345;
  task.participants = {3, 17, 42, 99, 100, 127};
  task.ready_at = {SimTime(1.0), SimTime(2.5), SimTime(3.0),
                   SimTime(4.25), SimTime(5.0), SimTime(6.5)};
  task.verify_speeds = {1.0, 0.8, 1.2, 0.95, 1.1, 1.05};
  task.failed = {0, 1, 0, 0, 1, 0};
  return task;
}

void expect_tasks_equal(const LaneTask& a, const LaneTask& b) {
  EXPECT_EQ(a.committee_id, b.committee_id);
  EXPECT_EQ(a.member_committees, b.member_committees);
  EXPECT_EQ(a.armed, b.armed);
  EXPECT_EQ(a.message_level_overlay, b.message_level_overlay);
  EXPECT_EQ(a.kernel_mode, b.kernel_mode);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.link_latency_mean.seconds()),
            std::bit_cast<std::uint64_t>(b.link_latency_mean.seconds()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.message_loss_probability),
            std::bit_cast<std::uint64_t>(b.message_loss_probability));
  EXPECT_EQ(a.randomness, b.randomness);
  EXPECT_EQ(a.overlay_seed, b.overlay_seed);
  EXPECT_EQ(a.net_seed, b.net_seed);
  EXPECT_EQ(a.cluster_seed, b.cluster_seed);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.formation.seconds()),
            std::bit_cast<std::uint64_t>(b.formation.seconds()));
  EXPECT_EQ(a.shard_txs, b.shard_txs);
  EXPECT_EQ(a.participants, b.participants);
  ASSERT_EQ(a.ready_at.size(), b.ready_at.size());
  for (std::size_t i = 0; i < a.ready_at.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.ready_at[i].seconds()),
              std::bit_cast<std::uint64_t>(b.ready_at[i].seconds()));
  }
  EXPECT_EQ(a.verify_speeds, b.verify_speeds);
  EXPECT_EQ(a.failed, b.failed);
}

TEST(FabricWire, TaskBatchRoundTrip) {
  TaskBatch batch;
  batch.epoch = 17;
  batch.tasks.push_back(sample_task());
  LaneTask unarmed;
  unarmed.committee_id = 2;
  unarmed.member_committees = 7;
  batch.tasks.push_back(unarmed);
  // A task whose formation is infinite must survive the f64 bit pattern.
  LaneTask infinite = sample_task();
  infinite.formation = SimTime::infinity();
  infinite.ready_at.clear();
  batch.tasks.push_back(infinite);

  std::vector<std::uint8_t> payload;
  mvcom::fabric::encode_task_batch(payload, batch);
  TaskBatch decoded;
  ASSERT_TRUE(mvcom::fabric::decode_task_batch(payload, decoded));
  EXPECT_EQ(decoded.epoch, 17u);
  ASSERT_EQ(decoded.tasks.size(), 3u);
  for (std::size_t i = 0; i < batch.tasks.size(); ++i) {
    SCOPED_TRACE("task " + std::to_string(i));
    expect_tasks_equal(batch.tasks[i], decoded.tasks[i]);
  }
  EXPECT_TRUE(decoded.tasks[2].formation.is_infinite());
}

TEST(FabricWire, ResultBatchRoundTrip) {
  ResultBatch batch;
  batch.epoch = 3;
  LaneResult result;
  result.committee_id = 4;
  result.formed = true;
  result.committed = true;
  result.formation = SimTime(655.5);
  result.consensus_latency = SimTime(12.25);
  result.view_changes = 2;
  result.order_digest = 0xfeedface12345678ULL;
  result.events_executed = 991;
  batch.results.push_back(result);
  batch.results.push_back(LaneResult{});  // unarmed: all defaults

  CounterDelta delta;
  delta.name = "pbft_messages_total";
  delta.help = "PBFT protocol messages";
  delta.labels = {{"phase", "prepare"}, {"worker", "1"}};
  delta.delta = 4242;
  batch.obs_deltas.push_back(delta);

  std::vector<std::uint8_t> payload;
  mvcom::fabric::encode_result_batch(payload, batch);
  ResultBatch decoded;
  ASSERT_TRUE(mvcom::fabric::decode_result_batch(payload, decoded));
  EXPECT_EQ(decoded.epoch, 3u);
  ASSERT_EQ(decoded.results.size(), 2u);
  EXPECT_EQ(decoded.results[0].order_digest, 0xfeedface12345678ULL);
  EXPECT_EQ(decoded.results[0].view_changes, 2u);
  EXPECT_TRUE(decoded.results[0].formed);
  EXPECT_FALSE(decoded.results[1].formed);
  EXPECT_EQ(decoded.results[1].order_digest, 0u);
  ASSERT_EQ(decoded.obs_deltas.size(), 1u);
  EXPECT_EQ(decoded.obs_deltas[0].name, "pbft_messages_total");
  EXPECT_EQ(decoded.obs_deltas[0].labels, delta.labels);
  EXPECT_EQ(decoded.obs_deltas[0].delta, 4242u);
}

TEST(FabricWire, ReportsAndOutcomeRoundTrip) {
  std::vector<mvcom::txn::ShardReport> reports(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    reports[i].committee_id = i;
    reports[i].tx_count = 1000 + i;
    reports[i].formation_latency = 600.0 + i;
    reports[i].consensus_latency = 10.5 * (i + 1);
  }
  std::vector<std::uint8_t> payload;
  mvcom::fabric::encode_reports(payload, reports);
  std::vector<mvcom::txn::ShardReport> decoded_reports;
  ASSERT_TRUE(mvcom::fabric::decode_reports(payload, decoded_reports));
  ASSERT_EQ(decoded_reports.size(), 3u);
  EXPECT_EQ(decoded_reports[2].tx_count, 1002u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded_reports[1].consensus_latency),
            std::bit_cast<std::uint64_t>(21.0));

  EpochOutcome outcome;
  outcome.committees.resize(2);
  outcome.committees[0].committee_id = 0;
  outcome.committees[0].member_count = 6;
  outcome.committees[0].formation_latency = SimTime(640.0);
  outcome.committees[0].consensus_latency = SimTime(15.5);
  outcome.committees[0].committed = true;
  outcome.committees[0].tx_count = 9000;
  outcome.committees[1].committee_id = 1;
  outcome.selected = {0};
  outcome.final_committed = true;
  outcome.final_consensus_latency = SimTime(30.25);
  outcome.epoch_makespan = SimTime(700.0);
  outcome.final_block_txs = 9000;
  outcome.next_epoch_randomness = "cafebabe";
  outcome.event_order_digest = 0x1234567890abcdefULL;
  outcome.events_executed = 55555;

  payload.clear();
  mvcom::fabric::encode_epoch_outcome(payload, outcome);
  EpochOutcome decoded;
  ASSERT_TRUE(mvcom::fabric::decode_epoch_outcome(payload, decoded));
  EXPECT_EQ(decoded.event_order_digest, outcome.event_order_digest);
  EXPECT_EQ(decoded.next_epoch_randomness, "cafebabe");
  EXPECT_EQ(decoded.selected, outcome.selected);
  ASSERT_EQ(decoded.committees.size(), 2u);
  EXPECT_EQ(decoded.committees[0].tx_count, 9000u);
  EXPECT_TRUE(decoded.committees[0].committed);
}

TEST(FabricWire, ZeroCommitteeOutcomeRoundTrip) {
  // A degenerate epoch (nothing formed, nothing selected) must encode and
  // decode cleanly — empty vectors are legitimate frame content.
  const EpochOutcome outcome;
  std::vector<std::uint8_t> payload;
  mvcom::fabric::encode_epoch_outcome(payload, outcome);
  EpochOutcome decoded;
  ASSERT_TRUE(mvcom::fabric::decode_epoch_outcome(payload, decoded));
  EXPECT_TRUE(decoded.committees.empty());
  EXPECT_TRUE(decoded.selected.empty());
  EXPECT_FALSE(decoded.final_committed);
  EXPECT_EQ(decoded.event_order_digest, 0u);

  TaskBatch empty_batch;
  empty_batch.epoch = 9;
  payload.clear();
  mvcom::fabric::encode_task_batch(payload, empty_batch);
  TaskBatch decoded_batch;
  ASSERT_TRUE(mvcom::fabric::decode_task_batch(payload, decoded_batch));
  EXPECT_EQ(decoded_batch.epoch, 9u);
  EXPECT_TRUE(decoded_batch.tasks.empty());
}

// --- framing + fuzz -------------------------------------------------------

std::vector<std::uint8_t> sample_frame() {
  TaskBatch batch;
  batch.epoch = 1;
  batch.tasks.push_back(sample_task());
  std::vector<std::uint8_t> payload;
  mvcom::fabric::encode_task_batch(payload, batch);
  std::vector<std::uint8_t> frame;
  mvcom::fabric::append_frame(frame, FrameType::kTaskBatch, payload);
  return frame;
}

TEST(FabricWireFuzz, FrameParsesAndConsumes) {
  const std::vector<std::uint8_t> frame = sample_frame();
  std::size_t consumed = 0;
  FrameView view;
  ASSERT_EQ(mvcom::fabric::parse_frame(frame, &consumed, &view),
            ParseStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(view.type, FrameType::kTaskBatch);
  TaskBatch decoded;
  EXPECT_TRUE(mvcom::fabric::decode_task_batch(view.payload, decoded));
}

TEST(FabricWireFuzz, TruncationAtEveryByteNeverParses) {
  const std::vector<std::uint8_t> frame = sample_frame();
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(
        frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut));
    std::size_t consumed = 0;
    FrameView view;
    const ParseStatus status =
        mvcom::fabric::parse_frame(prefix, &consumed, &view);
    EXPECT_EQ(status, ParseStatus::kNeedMore) << "cut at byte " << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(FabricWireFuzz, PayloadTruncationAtEveryByteFailsDecode) {
  TaskBatch batch;
  batch.epoch = 1;
  batch.tasks.push_back(sample_task());
  std::vector<std::uint8_t> payload;
  mvcom::fabric::encode_task_batch(payload, batch);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    TaskBatch decoded;
    EXPECT_FALSE(mvcom::fabric::decode_task_batch(
        std::span<const std::uint8_t>(payload.data(), cut), decoded))
        << "cut at byte " << cut;
  }
  // Trailing garbage must fail too (decoders demand full consumption).
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0x00);
  TaskBatch decoded;
  EXPECT_FALSE(mvcom::fabric::decode_task_batch(padded, decoded));
}

TEST(FabricWireFuzz, CorruptedChecksumRejects) {
  std::vector<std::uint8_t> frame = sample_frame();
  // Flip one payload bit: the stored checksum no longer matches.
  frame[mvcom::fabric::kFrameHeaderBytes + 3] ^= 0x10;
  std::size_t consumed = 0;
  FrameView view;
  EXPECT_EQ(mvcom::fabric::parse_frame(frame, &consumed, &view),
            ParseStatus::kCorrupt);
  // Flip a checksum byte instead (payload intact): same verdict.
  std::vector<std::uint8_t> frame2 = sample_frame();
  frame2[5] ^= 0x01;
  consumed = 0;
  EXPECT_EQ(mvcom::fabric::parse_frame(frame2, &consumed, &view),
            ParseStatus::kCorrupt);
}

TEST(FabricWireFuzz, OversizedLengthPrefixRejects) {
  std::vector<std::uint8_t> frame = sample_frame();
  // Length prefix claiming > kMaxFramePayload: must be kCorrupt, not a
  // multi-gigabyte "need more".
  frame[0] = 0xff;
  frame[1] = 0xff;
  frame[2] = 0xff;
  frame[3] = 0xff;
  std::size_t consumed = 0;
  FrameView view;
  EXPECT_EQ(mvcom::fabric::parse_frame(frame, &consumed, &view),
            ParseStatus::kCorrupt);
}

TEST(FabricWireFuzz, UnknownFrameTypeRejects) {
  std::vector<std::uint8_t> frame = sample_frame();
  frame[4] = 0x7f;
  std::size_t consumed = 0;
  FrameView view;
  EXPECT_EQ(mvcom::fabric::parse_frame(frame, &consumed, &view),
            ParseStatus::kCorrupt);
}

TEST(FabricWireFuzz, OversizedInnerLengthFailsDecode) {
  TaskBatch batch;
  batch.epoch = 1;
  batch.tasks.push_back(sample_task());
  std::vector<std::uint8_t> payload;
  mvcom::fabric::encode_task_batch(payload, batch);
  // The task-count u32 sits right after the epoch u64. Claim 2^31 tasks.
  payload[8] = 0x00;
  payload[9] = 0x00;
  payload[10] = 0x00;
  payload[11] = 0x80;
  TaskBatch decoded;
  EXPECT_FALSE(mvcom::fabric::decode_task_batch(payload, decoded));
}

TEST(FabricWireFuzz, RandomMutationsNeverCrash) {
  const std::vector<std::uint8_t> base = sample_frame();
  Rng rng(2024);
  for (int trial = 0; trial < 512; ++trial) {
    std::vector<std::uint8_t> mutated = base;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    std::size_t consumed = 0;
    FrameView view;
    const ParseStatus status =
        mvcom::fabric::parse_frame(mutated, &consumed, &view);
    if (status != ParseStatus::kOk) continue;  // rejected — fine
    TaskBatch decoded;
    (void)mvcom::fabric::decode_task_batch(view.payload, decoded);
  }
  SUCCEED();
}

// --- transport ------------------------------------------------------------

TEST(FabricTransport, BatchedFramesCrossTheSocketInOrder) {
  auto [a, b] = mvcom::fabric::make_channel_pair();
  const std::vector<std::uint8_t> p1 = {1, 2, 3};
  const std::vector<std::uint8_t> p2 = {};
  const std::vector<std::uint8_t> p3(1000, 0xab);
  a.queue_frame(FrameType::kTaskBatch, p1);
  a.queue_frame(FrameType::kShutdown, p2);
  a.queue_frame(FrameType::kResultBatch, p3);
  ASSERT_TRUE(a.flush());  // one batched write for all three

  FrameView frame;
  ASSERT_EQ(b.recv_frame(&frame, 5000), mvcom::fabric::RecvStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kTaskBatch);
  ASSERT_EQ(frame.payload.size(), 3u);
  EXPECT_EQ(frame.payload[2], 3u);
  ASSERT_EQ(b.recv_frame(&frame, 5000), mvcom::fabric::RecvStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_EQ(b.recv_frame(&frame, 5000), mvcom::fabric::RecvStatus::kOk);
  EXPECT_EQ(frame.payload.size(), 1000u);

  a.close();
  EXPECT_EQ(b.recv_frame(&frame, 5000), mvcom::fabric::RecvStatus::kEof);
}

TEST(FabricTransport, RecvTimesOutWithoutData) {
  auto [a, b] = mvcom::fabric::make_channel_pair();
  FrameView frame;
  EXPECT_EQ(b.recv_frame(&frame, 50), mvcom::fabric::RecvStatus::kTimeout);
  (void)a;
}

// --- 2-process determinism matrix ----------------------------------------

Trace fabric_trace() {
  Rng rng(7);
  TraceGeneratorConfig tc;
  tc.num_blocks = 96;
  tc.target_total_txs = 96'000;
  return generate_trace(tc, rng);
}

ElasticoConfig fabric_config() {
  ElasticoConfig config;
  config.num_nodes = 128;
  config.committee_size = 6;
  config.committee_bits = 3;  // 8 committees: 7 member + 1 final
  config.pow_expected_solve = SimTime(600.0);
  config.link_latency_mean = SimTime(1.0);
  config.pbft.verification_mean = SimTime(0.2);
  config.pbft.view_change_timeout = SimTime(120.0);
  return config;
}

std::vector<EpochOutcome> run_in_process(const ElasticoConfig& config,
                                         std::size_t epochs,
                                         const Trace& trace) {
  ElasticoNetwork network(config, Rng(4242));
  std::vector<EpochOutcome> out;
  for (std::size_t e = 0; e < epochs; ++e) {
    out.push_back(network.run_epoch(trace));
  }
  return out;
}

std::vector<EpochOutcome> run_on_fabric(const ElasticoConfig& config,
                                        std::size_t workers,
                                        std::size_t epochs, const Trace& trace,
                                        ProcessFabric* injected = nullptr) {
  FabricConfig fabric_cfg;
  fabric_cfg.workers = workers;
  std::optional<ProcessFabric> own;
  ProcessFabric& fleet =
      injected != nullptr ? *injected : own.emplace(fabric_cfg);
  ElasticoNetwork network(config, Rng(4242));
  network.set_lane_executor(fleet.executor());
  std::vector<EpochOutcome> out;
  for (std::size_t e = 0; e < epochs; ++e) {
    out.push_back(network.run_epoch(trace));
  }
  return out;
}

void expect_identical(const EpochOutcome& a, const EpochOutcome& b) {
  ASSERT_EQ(a.committees.size(), b.committees.size());
  for (std::size_t c = 0; c < a.committees.size(); ++c) {
    SCOPED_TRACE("committee " + std::to_string(c));
    const CommitteeOutcome& ca = a.committees[c];
    const CommitteeOutcome& cb = b.committees[c];
    EXPECT_EQ(ca.committee_id, cb.committee_id);
    EXPECT_EQ(ca.member_count, cb.member_count);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.formation_latency.seconds()),
              std::bit_cast<std::uint64_t>(cb.formation_latency.seconds()));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.consensus_latency.seconds()),
              std::bit_cast<std::uint64_t>(cb.consensus_latency.seconds()));
    EXPECT_EQ(ca.committed, cb.committed);
    EXPECT_EQ(ca.view_changes, cb.view_changes);
    EXPECT_EQ(ca.tx_count, cb.tx_count);
  }
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.final_committed, b.final_committed);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.final_consensus_latency.seconds()),
            std::bit_cast<std::uint64_t>(b.final_consensus_latency.seconds()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.epoch_makespan.seconds()),
            std::bit_cast<std::uint64_t>(b.epoch_makespan.seconds()));
  EXPECT_EQ(a.final_block_txs, b.final_block_txs);
  EXPECT_EQ(a.next_epoch_randomness, b.next_epoch_randomness);
  EXPECT_EQ(a.event_order_digest, b.event_order_digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(FabricDeterminism, ProcessCountsAndInProcessAgreeBitwise) {
  constexpr std::size_t kEpochs = 2;
  const Trace trace = fabric_trace();

  const auto run_scenario = [&](const std::string& label,
                                const ElasticoConfig& config) {
    SCOPED_TRACE(label);
    const std::vector<EpochOutcome> reference =
        run_in_process(config, kEpochs, trace);
    std::size_t committed = 0;
    for (const CommitteeOutcome& c : reference.front().committees) {
      if (c.committed) ++committed;
    }
    EXPECT_GT(committed, 0u) << "degenerate epoch: nothing committed";
    for (const std::size_t workers : {1u, 2u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      const std::vector<EpochOutcome> fabric =
          run_on_fabric(config, workers, kEpochs, trace);
      ASSERT_EQ(reference.size(), fabric.size());
      for (std::size_t e = 0; e < reference.size(); ++e) {
        SCOPED_TRACE("epoch " + std::to_string(e));
        expect_identical(reference[e], fabric[e]);
      }
    }
  };

  run_scenario("baseline", fabric_config());
  {
    ElasticoConfig config = fabric_config();
    config.node_failure_probability = 0.10;
    config.message_loss_probability = 0.02;
    run_scenario("faulty", config);
  }
  {
    ElasticoConfig config = fabric_config();
    config.message_level_overlay = true;
    run_scenario("message_overlay", config);
  }
}

TEST(FabricDeterminism, SigkillMidEpochReplaysToIdenticalDigests) {
  constexpr std::size_t kEpochs = 3;
  const Trace trace = fabric_trace();
  const ElasticoConfig config = fabric_config();
  const std::vector<EpochOutcome> reference =
      run_in_process(config, kEpochs, trace);

  FabricConfig fabric_cfg;
  fabric_cfg.workers = 2;
  ProcessFabric fleet(fabric_cfg);
  // Murder worker 0 right after epoch 1's dispatch: the coordinator must
  // detect the death, re-fork, replay the batch, and land on the SAME
  // results — crash recovery as pure replay.
  fleet.inject_kill(0, 1);
  const std::vector<EpochOutcome> survived =
      run_on_fabric(config, 2, kEpochs, trace, &fleet);
  EXPECT_GE(fleet.respawns(), 1u);
  ASSERT_EQ(reference.size(), survived.size());
  for (std::size_t e = 0; e < reference.size(); ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    expect_identical(reference[e], survived[e]);
  }
}

TEST(FabricDeterminism, ObsCounterDeltasFoldLikeSharedRegistry) {
  // The worker ships per-epoch counter deltas; folded coordinator-side they
  // must equal what one shared registry would have counted in-process.
  const Trace trace = fabric_trace();
  const ElasticoConfig config = fabric_config();

  mvcom::obs::MetricsRegistry in_process;
  {
    ElasticoNetwork network(config, Rng(4242));
    network.set_obs(mvcom::obs::ObsContext(&in_process, nullptr));
    (void)network.run_epoch(trace);
  }

  mvcom::obs::MetricsRegistry folded;
  {
    FabricConfig fabric_cfg;
    fabric_cfg.workers = 2;
    ProcessFabric fleet(fabric_cfg,
                        mvcom::obs::ObsContext(&folded, nullptr));
    ElasticoNetwork network(config, Rng(4242));
    network.set_obs(mvcom::obs::ObsContext(&folded, nullptr));
    network.set_lane_executor(fleet.executor());
    (void)network.run_epoch(trace);
  }

  if (!mvcom::obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  // Compare every counter family the in-process run produced (the fabric
  // run adds its own fabric_* counters on top; lane counters must match).
  for (const auto& snap : in_process.snapshot()) {
    if (snap.type != mvcom::obs::MetricsRegistry::Type::kCounter) continue;
    // Zero-valued families are registered but never shipped (deltas carry
    // only increments) — nothing to compare.
    if (static_cast<std::uint64_t>(snap.value) == 0) continue;
    SCOPED_TRACE(snap.name);
    bool found = false;
    for (const auto& other : folded.snapshot()) {
      if (other.name != snap.name) continue;
      bool same_labels = other.labels.size() == snap.labels.size();
      for (std::size_t i = 0; same_labels && i < snap.labels.size(); ++i) {
        same_labels = other.labels[i].key == snap.labels[i].key &&
                      other.labels[i].value == snap.labels[i].value;
      }
      if (!same_labels) continue;
      found = true;
      EXPECT_EQ(static_cast<std::uint64_t>(other.value),
                static_cast<std::uint64_t>(snap.value));
    }
    EXPECT_TRUE(found) << "counter missing from folded registry";
  }
}

}  // namespace
