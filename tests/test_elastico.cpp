// Tests for the Elastico sharding substrate: epoch pipeline, two-phase
// latency structure, scheduler hook, and multi-epoch randomness refresh.

#include "sharding/elastico.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::sharding::CommitteeOutcome;
using mvcom::sharding::deal_blocks;
using mvcom::sharding::ElasticoConfig;
using mvcom::sharding::ElasticoNetwork;
using mvcom::sharding::EpochOutcome;
using mvcom::txn::generate_trace;
using mvcom::txn::Trace;
using mvcom::txn::TraceGeneratorConfig;

Trace small_trace(std::uint64_t blocks = 128, std::uint64_t txs = 128'000,
                  std::uint64_t seed = 1) {
  Rng rng(seed);
  TraceGeneratorConfig tc;
  tc.num_blocks = blocks;
  tc.target_total_txs = txs;
  return generate_trace(tc, rng);
}

ElasticoConfig small_config() {
  ElasticoConfig config;
  config.num_nodes = 96;
  config.committee_size = 6;
  config.committee_bits = 3;  // 8 committees: 7 member + 1 final
  config.pow_expected_solve = SimTime(600.0);
  config.link_latency_mean = SimTime(1.0);
  config.pbft.verification_mean = SimTime(0.2);
  config.pbft.view_change_timeout = SimTime(120.0);
  return config;
}

TEST(DealBlocksTest, EveryShardGetsAtLeastOneBlockAndTotalsMatch) {
  const Trace trace = small_trace();
  Rng rng(2);
  const auto txs = deal_blocks(trace, 10, rng);
  ASSERT_EQ(txs.size(), 10u);
  std::uint64_t total = 0;
  for (const std::uint64_t t : txs) {
    EXPECT_GE(t, 1u);
    total += t;
  }
  EXPECT_EQ(total, trace.total_txs());
}

TEST(DealBlocksTest, RejectsMoreShardsThanBlocks) {
  const Trace trace = small_trace(4, 4000);
  Rng rng(3);
  EXPECT_THROW(deal_blocks(trace, 5, rng), std::invalid_argument);
  EXPECT_THROW(deal_blocks(trace, 0, rng), std::invalid_argument);
}

TEST(ElasticoTest, EpochProducesCommittedCommittees) {
  ElasticoNetwork network(small_config(), Rng(42));
  const EpochOutcome outcome = network.run_epoch(small_trace());
  EXPECT_EQ(outcome.committees.size(), network.num_member_committees());
  std::size_t committed = 0;
  for (const CommitteeOutcome& c : outcome.committees) {
    if (!c.committed) continue;
    ++committed;
    EXPECT_GT(c.formation_latency.seconds(), 0.0);
    EXPECT_GT(c.consensus_latency.seconds(), 0.0);
    EXPECT_GT(c.tx_count, 0u);
    EXPECT_DOUBLE_EQ(c.two_phase_latency().seconds(),
                     c.formation_latency.seconds() +
                         c.consensus_latency.seconds());
  }
  EXPECT_GE(committed, network.num_member_committees() / 2);
}

TEST(ElasticoTest, FinalConsensusWaitsForSlowestSelectedShard) {
  ElasticoNetwork network(small_config(), Rng(43));
  const EpochOutcome outcome = network.run_epoch(small_trace());
  if (!outcome.final_committed) GTEST_SKIP() << "final committee too small";
  double slowest = 0.0;
  for (const std::uint32_t id : outcome.selected) {
    slowest = std::max(slowest,
                       outcome.committees[id].two_phase_latency().seconds());
  }
  EXPECT_GE(outcome.epoch_makespan.seconds(),
            slowest + outcome.final_consensus_latency.seconds() - 1e-9);
}

TEST(ElasticoTest, SchedulerHookControlsSelection) {
  ElasticoNetwork network(small_config(), Rng(44));
  // Select only the two fastest committed committees.
  const EpochOutcome outcome = network.run_epoch(
      small_trace(), [](const std::vector<CommitteeOutcome>& committed) {
        std::vector<CommitteeOutcome> sorted = committed;
        std::sort(sorted.begin(), sorted.end(),
                  [](const CommitteeOutcome& a, const CommitteeOutcome& b) {
                    return a.two_phase_latency() < b.two_phase_latency();
                  });
        std::vector<std::uint32_t> ids;
        for (std::size_t i = 0; i < std::min<std::size_t>(2, sorted.size());
             ++i) {
          ids.push_back(sorted[i].committee_id);
        }
        return ids;
      });
  EXPECT_LE(outcome.selected.size(), 2u);
  std::uint64_t expected_txs = 0;
  for (const std::uint32_t id : outcome.selected) {
    expected_txs += outcome.committees[id].tx_count;
  }
  EXPECT_EQ(outcome.final_block_txs, expected_txs);
}

TEST(ElasticoTest, SchedulingFastShardsShortensEpochMakespan) {
  // The paper's whole point: excluding stragglers accelerates the final
  // block. Same seed, two policies.
  const Trace trace = small_trace();
  ElasticoNetwork wait_all(small_config(), Rng(45));
  const EpochOutcome slow = wait_all.run_epoch(trace);

  ElasticoNetwork pick_fast(small_config(), Rng(45));
  const EpochOutcome fast = pick_fast.run_epoch(
      trace, [](const std::vector<CommitteeOutcome>& committed) {
        // Keep committees at most 20% slower than the fastest half's median.
        std::vector<CommitteeOutcome> sorted = committed;
        std::sort(sorted.begin(), sorted.end(),
                  [](const CommitteeOutcome& a, const CommitteeOutcome& b) {
                    return a.two_phase_latency() < b.two_phase_latency();
                  });
        std::vector<std::uint32_t> ids;
        for (std::size_t i = 0; i < (sorted.size() + 1) / 2; ++i) {
          ids.push_back(sorted[i].committee_id);
        }
        return ids;
      });
  if (!slow.final_committed || !fast.final_committed) {
    GTEST_SKIP() << "final committee under-populated for this seed";
  }
  EXPECT_LT(fast.epoch_makespan.seconds(), slow.epoch_makespan.seconds());
  EXPECT_LE(fast.final_block_txs, slow.final_block_txs);
}

TEST(ElasticoTest, ReportsBridgeToWorkloadSchema) {
  ElasticoNetwork network(small_config(), Rng(46));
  const EpochOutcome outcome = network.run_epoch(small_trace());
  const auto reports = outcome.reports();
  std::size_t committed = 0;
  for (const CommitteeOutcome& c : outcome.committees) {
    committed += c.committed ? 1 : 0;
  }
  EXPECT_EQ(reports.size(), committed);
  for (const auto& r : reports) {
    EXPECT_NEAR(r.two_phase_latency(),
                outcome.committees[r.committee_id].two_phase_latency().seconds(),
                1e-9);
    EXPECT_EQ(r.tx_count, outcome.committees[r.committee_id].tx_count);
  }
}

TEST(ElasticoTest, EpochRandomnessRefreshes) {
  ElasticoNetwork network(small_config(), Rng(47));
  const std::string r0 = network.epoch_randomness();
  network.run_epoch(small_trace());
  const std::string r1 = network.epoch_randomness();
  network.run_epoch(small_trace());
  const std::string r2 = network.epoch_randomness();
  EXPECT_NE(r0, r1);
  EXPECT_NE(r1, r2);
  EXPECT_EQ(r1.size(), 64u);
}

TEST(ElasticoTest, DeterministicGivenSeed) {
  const Trace trace = small_trace();
  ElasticoNetwork a(small_config(), Rng(48));
  ElasticoNetwork b(small_config(), Rng(48));
  const EpochOutcome oa = a.run_epoch(trace);
  const EpochOutcome ob = b.run_epoch(trace);
  ASSERT_EQ(oa.committees.size(), ob.committees.size());
  for (std::size_t i = 0; i < oa.committees.size(); ++i) {
    EXPECT_EQ(oa.committees[i].committed, ob.committees[i].committed);
    EXPECT_DOUBLE_EQ(oa.committees[i].two_phase_latency().seconds(),
                     ob.committees[i].two_phase_latency().seconds());
    EXPECT_EQ(oa.committees[i].tx_count, ob.committees[i].tx_count);
  }
}

TEST(ElasticoTest, FormationLatencyGrowsWithNetworkSize) {
  // Fig. 2(a): formation latency increases (linearly) with network size,
  // driven by the overlay identity exchange.
  // As in Elastico, the committee count scales with the network (so the
  // per-committee PoW order statistic stays put) and the linear overlay
  // identity exchange dominates growth.
  const Trace trace = small_trace();
  auto mean_formation = [&](std::size_t nodes, int bits, std::uint64_t seed) {
    ElasticoConfig config = small_config();
    config.num_nodes = nodes;
    config.committee_bits = bits;
    config.overlay_cost_per_node = SimTime(0.5);
    ElasticoNetwork network(config, Rng(seed));
    const EpochOutcome outcome = network.run_epoch(trace);
    double sum = 0.0;
    std::size_t count = 0;
    for (const CommitteeOutcome& c : outcome.committees) {
      if (!c.committed) continue;
      sum += c.formation_latency.seconds();
      ++count;
    }
    return count ? sum / static_cast<double>(count) : 0.0;
  };
  double small_sum = 0.0;
  double large_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    small_sum += mean_formation(96, 3, 100 + seed);    // ~12 per committee
    large_sum += mean_formation(384, 5, 200 + seed);   // ~12 per committee
  }
  EXPECT_GT(large_sum, small_sum);
}

TEST(ElasticoTest, MessageLevelOverlayProducesCommittedEpochs) {
  ElasticoConfig config = small_config();
  config.message_level_overlay = true;
  ElasticoNetwork network(config, Rng(52));
  const EpochOutcome outcome = network.run_epoch(small_trace());
  std::size_t committed = 0;
  for (const CommitteeOutcome& c : outcome.committees) {
    if (c.committed) {
      ++committed;
      // Formation includes the JOIN exchange and the directory's linear
      // identity scan — it must exceed the bare PoW order statistic.
      EXPECT_GT(c.formation_latency.seconds(),
                static_cast<double>(config.num_nodes) *
                    config.overlay_identity_processing.seconds());
    }
  }
  EXPECT_GE(committed, network.num_member_committees() / 2);
}

TEST(ElasticoTest, BeaconRandomnessStillRefreshesDeterministically) {
  ElasticoConfig config = small_config();
  config.beacon_randomness = true;
  ElasticoNetwork a(config, Rng(53));
  ElasticoNetwork b(config, Rng(53));
  const Trace trace = small_trace();
  a.run_epoch(trace);
  b.run_epoch(trace);
  EXPECT_EQ(a.epoch_randomness(), b.epoch_randomness());
  // And the beacon path differs from the hash-only path.
  ElasticoConfig plain = small_config();
  ElasticoNetwork c(plain, Rng(53));
  c.run_epoch(trace);
  EXPECT_NE(a.epoch_randomness(), c.epoch_randomness());
}

TEST(ElasticoTest, RootChainGrowsAndValidatesAcrossEpochs) {
  ElasticoNetwork network(small_config(), Rng(49));
  const Trace trace = small_trace();
  std::uint64_t committed_epochs = 0;
  for (int e = 0; e < 3; ++e) {
    const EpochOutcome outcome = network.run_epoch(trace);
    if (outcome.final_committed) ++committed_epochs;
  }
  EXPECT_EQ(network.root_chain().height(), committed_epochs);
  EXPECT_TRUE(network.root_chain().validate_full());
  // Each non-genesis block carries the selected shard roots and TX totals.
  for (std::uint64_t h = 1; h <= network.root_chain().height(); ++h) {
    const auto& block = network.root_chain().at(h);
    EXPECT_FALSE(block.shard_roots.empty());
    EXPECT_GT(block.header.tx_count, 0u);
    EXPECT_TRUE(block.merkle_consistent());
  }
}

TEST(ElasticoTest, NodeFailuresDegradeButDoNotBreakTheEpoch) {
  const Trace trace = small_trace();
  auto committed_count = [&](double failure_probability, std::uint64_t seed) {
    ElasticoConfig config = small_config();
    config.node_failure_probability = failure_probability;
    config.pbft.horizon = SimTime(1200.0);  // bound dead committees' wait
    ElasticoNetwork network(config, Rng(seed));
    const EpochOutcome outcome = network.run_epoch(trace);
    std::size_t committed = 0;
    for (const CommitteeOutcome& c : outcome.committees) {
      committed += c.committed ? 1 : 0;
    }
    return committed;
  };
  std::size_t healthy = 0;
  std::size_t degraded = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    healthy += committed_count(0.0, 60 + seed);
    degraded += committed_count(0.4, 60 + seed);
  }
  EXPECT_GT(healthy, degraded);  // failures cost committees...
  EXPECT_GT(degraded, 0u);       // ...but never wedge the pipeline
}

TEST(ElasticoTest, MessageLossDegradesButDoesNotBreakTheEpoch) {
  ElasticoConfig config = small_config();
  config.message_loss_probability = 0.10;
  config.pbft.horizon = SimTime(1200.0);
  ElasticoNetwork network(config, Rng(71));
  const EpochOutcome outcome = network.run_epoch(small_trace());
  std::size_t committed = 0;
  for (const CommitteeOutcome& c : outcome.committees) {
    committed += c.committed ? 1 : 0;
  }
  EXPECT_GT(committed, 0u);
}

TEST(ElasticoTest, RejectsInvalidConfigs) {
  ElasticoConfig bad_bits = small_config();
  bad_bits.committee_bits = 0;
  EXPECT_THROW(ElasticoNetwork(bad_bits, Rng(1)), std::invalid_argument);

  ElasticoConfig tiny_committee = small_config();
  tiny_committee.committee_size = 3;
  EXPECT_THROW(ElasticoNetwork(tiny_committee, Rng(1)), std::invalid_argument);

  ElasticoConfig too_few_nodes = small_config();
  too_few_nodes.num_nodes = 10;
  EXPECT_THROW(ElasticoNetwork(too_few_nodes, Rng(1)), std::invalid_argument);
}

}  // namespace
