// Lemma 2 — "the constructed Markov chain is irreducible": every pair of
// states is mutually reachable through swap transitions. Verified here as
// graph connectivity (BFS) of the enumerated per-cardinality state spaces,
// both with slack capacity (the paper's implicit setting) and under binding
// capacity, where feasibility prunes edges — the empirical check that our
// capacity-aware transition rule keeps the explored spaces connected on
// paper-like workloads.

#include <gtest/gtest.h>

#include <bit>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "analysis/markov.hpp"
#include "common/rng.hpp"
#include "mvcom/problem.hpp"

namespace {

using mvcom::analysis::enumerate_space;
using mvcom::analysis::SolutionSpace;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;

/// BFS over the swap-neighbor graph restricted to the space's states.
bool swap_graph_connected(const SolutionSpace& space) {
  if (space.states.size() <= 1) return true;
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (std::size_t s = 0; s < space.states.size(); ++s) {
    index.emplace(space.states[s], s);
  }
  std::unordered_set<std::size_t> visited{0};
  std::queue<std::size_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const std::uint32_t mask = space.states[frontier.front()];
    frontier.pop();
    for (std::uint32_t out = 0; out < 32; ++out) {
      if (!(mask & (std::uint32_t{1} << out))) continue;
      for (std::uint32_t in = 0; in < 32; ++in) {
        if (mask & (std::uint32_t{1} << in)) continue;
        const std::uint32_t next =
            (mask & ~(std::uint32_t{1} << out)) | (std::uint32_t{1} << in);
        const auto it = index.find(next);
        if (it == index.end()) continue;
        if (visited.insert(it->second).second) frontier.push(it->second);
      }
    }
  }
  return visited.size() == space.states.size();
}

EpochInstance random_instance(std::uint64_t seed, std::size_t n,
                              double capacity_fraction) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Committee c{static_cast<std::uint32_t>(i), 500 + rng.below(1500),
                rng.uniform(0.0, 900.0)};
    total += c.txs;
    committees.push_back(c);
  }
  return EpochInstance(std::move(committees), 1.5,
                       static_cast<std::uint64_t>(
                           capacity_fraction * static_cast<double>(total)),
                       0);
}

TEST(IrreducibilityTest, SlackCapacitySpacesAreAlwaysConnected) {
  // With no pruning, the Johnson-graph structure guarantees connectivity —
  // the textbook content of Lemma 2.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EpochInstance inst = random_instance(seed, 10, 10.0);
    for (std::size_t n = 1; n < 10; ++n) {
      const auto space = enumerate_space(inst, n);
      ASSERT_FALSE(space.states.empty());
      EXPECT_TRUE(swap_graph_connected(space)) << "seed " << seed
                                               << " n " << n;
    }
  }
}

class IrreducibilityCapacitySweep
    : public ::testing::TestWithParam<double> {};

TEST_P(IrreducibilityCapacitySweep, BindingCapacityKeepsExploredSpacesConnected) {
  const double fraction = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EpochInstance inst = random_instance(seed * 7, 12, fraction);
    for (std::size_t n = 1; n <= 12; ++n) {
      const auto space = enumerate_space(inst, n);
      if (space.states.empty()) continue;  // cardinality infeasible
      EXPECT_TRUE(swap_graph_connected(space))
          << "fraction " << fraction << " seed " << seed << " n " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CapacityFractions, IrreducibilityCapacitySweep,
                         ::testing::Values(0.4, 0.6, 0.8));

TEST(IrreducibilityTest, FullSpaceSizeIsTwoToTheI) {
  // Sanity anchor for the |F| = 2^|I| counting used by Remark 1 & Lemma 4.
  const EpochInstance inst = random_instance(3, 11, 10.0);
  std::size_t total_states = 0;
  for (std::size_t n = 0; n <= 11; ++n) {
    total_states += enumerate_space(inst, n).states.size();
  }
  EXPECT_EQ(total_states, std::size_t{1} << 11);
}

}  // namespace
