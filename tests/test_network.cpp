// Tests for the net module — latency models and the message fabric.

#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::net::ExponentialLatency;
using mvcom::net::FixedLatency;
using mvcom::net::LognormalLatency;
using mvcom::net::Network;
using mvcom::net::UniformLatency;
using mvcom::sim::Simulator;

TEST(LatencyModelTest, FixedAlwaysSame) {
  Rng rng(1);
  FixedLatency model(SimTime(2.5));
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(rng).seconds(), 2.5);
  }
  EXPECT_DOUBLE_EQ(model.mean().seconds(), 2.5);
}

TEST(LatencyModelTest, UniformStaysInRangeAndMeanMatches) {
  Rng rng(2);
  UniformLatency model(SimTime(1.0), SimTime(3.0));
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double s = model.sample(rng).seconds();
    ASSERT_GE(s, 1.0);
    ASSERT_LT(s, 3.0);
    sum += s;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.02);
  EXPECT_DOUBLE_EQ(model.mean().seconds(), 2.0);
}

TEST(LatencyModelTest, ExponentialMeanMatches) {
  Rng rng(3);
  ExponentialLatency model(SimTime(5.0));
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += model.sample(rng).seconds();
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(LatencyModelTest, LognormalMomentsMatch) {
  Rng rng(4);
  LognormalLatency model(SimTime(2.0), SimTime(1.0));
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double s = model.sample(rng).seconds();
    ASSERT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.03);
}

class NetworkFixture : public ::testing::Test {
 protected:
  Simulator sim_;
  Network net_{sim_, Rng(99), std::make_shared<FixedLatency>(SimTime(1.0)), 4};
};

TEST_F(NetworkFixture, SendDeliversAfterDelay) {
  bool delivered = false;
  EXPECT_TRUE(net_.send(0, 1, [&] { delivered = true; }));
  EXPECT_FALSE(delivered);
  sim_.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(sim_.now().seconds(), 1.0);
  EXPECT_EQ(net_.messages_sent(), 1u);
}

TEST_F(NetworkFixture, FailedReceiverDropsMessage) {
  net_.set_failed(1, true);
  bool delivered = false;
  EXPECT_FALSE(net_.send(0, 1, [&] { delivered = true; }));
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.messages_dropped(), 1u);
}

TEST_F(NetworkFixture, FailedSenderDropsMessage) {
  net_.set_failed(0, true);
  EXPECT_FALSE(net_.send(0, 1, [] {}));
  EXPECT_EQ(net_.messages_dropped(), 1u);
}

TEST_F(NetworkFixture, RecoveryRestoresDelivery) {
  net_.set_failed(1, true);
  EXPECT_FALSE(net_.send(0, 1, [] {}));
  net_.set_failed(1, false);
  EXPECT_TRUE(net_.send(0, 1, [] {}));
}

TEST_F(NetworkFixture, NodeFactorScalesDelay) {
  net_.set_node_factor(2, 4.0);
  // Both endpoints scale: 1.0s base * 1.0 (node 0) * 4.0 (node 2).
  EXPECT_DOUBLE_EQ(net_.sample_delay(0, 2).seconds(), 4.0);
  EXPECT_DOUBLE_EQ(net_.sample_delay(2, 0).seconds(), 4.0);
  EXPECT_DOUBLE_EQ(net_.sample_delay(0, 1).seconds(), 1.0);
}

TEST_F(NetworkFixture, BroadcastReachesAllOthers) {
  int deliveries = 0;
  net_.broadcast(0, [&](mvcom::net::NodeId) {
    return [&deliveries] { ++deliveries; };
  });
  sim_.run();
  EXPECT_EQ(deliveries, 3);
  EXPECT_EQ(net_.messages_sent(), 3u);
}

TEST_F(NetworkFixture, PingRttIsFiniteForLiveAndInfiniteForFailed) {
  EXPECT_DOUBLE_EQ(net_.ping_rtt(0, 1).seconds(), 2.0);
  net_.set_failed(3, true);
  // §V-A: "a failed member committee ... its connection latency can be
  // tested as infinity."
  EXPECT_TRUE(net_.ping_rtt(0, 3).is_infinite());
}

TEST_F(NetworkFixture, MessageLossDropsApproximatelyTheConfiguredFraction) {
  net_.set_loss_probability(0.25);
  int delivered = 0;
  for (int i = 0; i < 4000; ++i) {
    if (net_.send(0, 1, [] {})) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / 4000.0, 0.75, 0.03);
  EXPECT_EQ(net_.messages_sent() + net_.messages_dropped(), 4000u);
}

TEST_F(NetworkFixture, LossProbabilityValidation) {
  EXPECT_THROW(net_.set_loss_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(net_.set_loss_probability(1.0), std::invalid_argument);
  net_.set_loss_probability(0.0);  // reliable again
  EXPECT_TRUE(net_.send(0, 1, [] {}));
}

TEST(NetworkTest, NullModelRejected) {
  Simulator sim;
  EXPECT_THROW(Network(sim, Rng(1), nullptr, 2), std::invalid_argument);
}

TEST(NetworkTest, OutOfRangeNodeThrows) {
  Simulator sim;
  Network net(sim, Rng(1), std::make_shared<FixedLatency>(SimTime(1.0)), 2);
  EXPECT_THROW(net.set_failed(5, true), std::out_of_range);
  EXPECT_THROW(net.set_node_factor(2, 1.0), std::out_of_range);
}

}  // namespace
