// Tests for the baseline solvers (SA, DP, WOA, Greedy, Exhaustive) and the
// shared repair helper: feasibility always, optimality never above the
// exhaustive ground truth, DP exactness in its knapsack regime.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dynamic_programming.hpp"
#include "baselines/exhaustive.hpp"
#include "baselines/greedy.hpp"
#include "baselines/simulated_annealing.hpp"
#include "baselines/solver.hpp"
#include "baselines/whale_optimization.hpp"
#include "common/rng.hpp"

namespace {

using mvcom::baselines::DynamicProgramming;
using mvcom::baselines::Exhaustive;
using mvcom::baselines::Greedy;
using mvcom::baselines::repair;
using mvcom::baselines::SimulatedAnnealing;
using mvcom::baselines::WhaleOptimization;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;
using mvcom::core::Selection;

EpochInstance random_instance(std::uint64_t seed, std::size_t n = 12,
                              std::size_t n_min = 3,
                              double capacity_fraction = 0.7) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Committee c;
    c.id = static_cast<std::uint32_t>(i);
    c.txs = 500 + rng.below(1500);
    c.latency = 600.0 + rng.uniform(0.0, 900.0);
    total += c.txs;
    committees.push_back(c);
  }
  return EpochInstance(std::move(committees), 1.5,
                       static_cast<std::uint64_t>(
                           capacity_fraction * static_cast<double>(total)),
                       n_min);
}

// --- repair() ----------------------------------------------------------------

TEST(RepairTest, OverCapacityIsShedToFeasible) {
  const EpochInstance inst = random_instance(1);
  Selection x(inst.size(), 1);  // everything selected: over capacity
  ASSERT_TRUE(repair(inst, x));
  EXPECT_TRUE(inst.feasible(x));
}

TEST(RepairTest, UnderNminIsToppedUp) {
  const EpochInstance inst = random_instance(2, 12, 5);
  Selection x(inst.size(), 0);
  x[0] = 1;
  ASSERT_TRUE(repair(inst, x));
  const auto st = inst.stats(x);
  EXPECT_GE(st.chosen, 5u);
  EXPECT_LE(st.txs, inst.capacity());
}

TEST(RepairTest, ImpossibleConstraintsReturnFalse) {
  // N_min = 3 but even the two smallest shards exceed capacity.
  std::vector<Committee> committees{
      {0, 100, 1.0}, {1, 110, 2.0}, {2, 120, 3.0}};
  const EpochInstance inst(committees, 1.0, 150, 3);
  Selection x(3, 0);
  EXPECT_FALSE(repair(inst, x));
}

TEST(RepairTest, FeasibleInputIsUntouched) {
  const EpochInstance inst = random_instance(3);
  Selection x(inst.size(), 0);
  x[0] = x[1] = x[2] = 1;
  const Selection before = x;
  if (inst.feasible(before)) {
    ASSERT_TRUE(repair(inst, x));
    EXPECT_EQ(x, before);
  }
}

// --- individual solvers -------------------------------------------------------

TEST(ExhaustiveTest, FindsTheTrueOptimum) {
  // Cross-check against a hand-computed 3-committee instance.
  std::vector<Committee> committees{
      {0, 10, 90.0}, {1, 20, 100.0}, {2, 15, 95.0}};
  // t=100. gains: 10α-10, 20α, 15α-5 with α=1 → 0, 20, 10.
  const EpochInstance inst(committees, 1.0, 35, 0, 100.0);
  Exhaustive exact;
  const auto result = exact.solve(inst);
  ASSERT_TRUE(result.feasible);
  // Best: {1,2} = 30 (20+15=35 <= 35 capacity).
  EXPECT_NEAR(result.utility, 30.0, 1e-9);
  EXPECT_EQ(result.best, (Selection{0, 1, 1}));
}

TEST(ExhaustiveTest, RefusesHugeInstances) {
  const EpochInstance inst = random_instance(4, 12);
  Exhaustive exact(8);
  EXPECT_THROW(exact.solve(inst), std::invalid_argument);
}

TEST(GreedyTest, FeasibleAndDeterministic) {
  const EpochInstance inst = random_instance(5);
  Greedy greedy;
  const auto a = greedy.solve(inst);
  const auto b = greedy.solve(inst);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.best, b.best);
  EXPECT_TRUE(inst.feasible(a.best));
}

TEST(DpTest, UtilityVariantExactInUnscaledKnapsackRegime) {
  // With scale = 1 (capacity < max_buckets) and N_min = 0, the kUtility DP
  // must equal the exhaustive optimum: MVCom with those settings IS the
  // knapsack (Lemma 1).
  Exhaustive exact;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const EpochInstance inst = random_instance(seed, 12, 0);
    mvcom::baselines::DpParams params;
    params.objective = mvcom::baselines::DpObjective::kUtility;
    DynamicProgramming dp(params);
    const auto dp_result = dp.solve(inst);
    const auto truth = exact.solve(inst);
    ASSERT_TRUE(dp_result.feasible);
    ASSERT_TRUE(truth.feasible);
    EXPECT_NEAR(dp_result.utility, truth.utility, 1e-6) << "seed " << seed;
  }
}

TEST(DpTest, ThroughputVariantPacksMoreTxsButNoMoreUtility) {
  // The paper's DP maximizes packed TXs; the utility-exact variant bounds
  // it from above on Eq. (2) while it bounds the others on throughput.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const EpochInstance inst = random_instance(seed, 14, 0);
    DynamicProgramming throughput_dp;  // default objective
    mvcom::baselines::DpParams params;
    params.objective = mvcom::baselines::DpObjective::kUtility;
    DynamicProgramming utility_dp(params);
    const auto tp = throughput_dp.solve(inst);
    const auto ut = utility_dp.solve(inst);
    ASSERT_TRUE(tp.feasible);
    ASSERT_TRUE(ut.feasible);
    EXPECT_LE(tp.utility, ut.utility + 1e-6) << "seed " << seed;
    EXPECT_GE(inst.permitted_txs(tp.best) + 1,
              inst.permitted_txs(ut.best))
        << "seed " << seed;
  }
}

TEST(DpTest, ScaledCapacityStaysFeasibleAndClose) {
  mvcom::common::Rng rng(7);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 60; ++i) {
    Committee c{i, 5'000 + rng.below(20'000), 600.0 + rng.uniform(0.0, 600.0)};
    total += c.txs;
    committees.push_back(c);
  }
  const EpochInstance inst(committees, 1.5, (total * 3) / 4, 0);
  mvcom::baselines::DpParams params;
  params.max_buckets = 500;  // forces aggressive rounding
  params.objective = mvcom::baselines::DpObjective::kUtility;
  DynamicProgramming dp(params);
  const auto scaled = dp.solve(inst);
  ASSERT_TRUE(scaled.feasible);
  EXPECT_TRUE(inst.feasible(scaled.best));
  // capacity ~ 0.75 * 60 * 15000 ≈ 675k > 50k buckets, so compare against a
  // generous bucket count instead.
  mvcom::baselines::DpParams fine;
  fine.max_buckets = 1'000'000;
  fine.objective = mvcom::baselines::DpObjective::kUtility;
  DynamicProgramming dp_fine(fine);
  const auto reference = dp_fine.solve(inst);
  ASSERT_TRUE(reference.feasible);
  EXPECT_GE(scaled.utility, 0.95 * reference.utility);
}

TEST(SaTest, FeasibleAndWithinOptimum) {
  Exhaustive exact;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EpochInstance inst = random_instance(seed, 12, 3);
    SimulatedAnnealing sa({}, seed * 3);
    const auto result = sa.solve(inst);
    const auto truth = exact.solve(inst);
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_TRUE(inst.feasible(result.best));
    EXPECT_LE(result.utility, truth.utility + 1e-6);
    EXPECT_GE(result.utility, 0.85 * truth.utility) << "seed " << seed;
  }
}

TEST(SaTest, TraceIsMonotoneBestSoFar) {
  const EpochInstance inst = random_instance(8);
  SimulatedAnnealing sa({}, 11);
  const auto result = sa.solve(inst);
  double prev = -1e300;
  for (const double u : result.utility_trace) {
    if (std::isnan(u)) continue;
    EXPECT_GE(u, prev - 1e-9);
    prev = u;
  }
}

TEST(WoaTest, FeasibleAndBelowOptimum) {
  Exhaustive exact;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const EpochInstance inst = random_instance(seed, 12, 3);
    WhaleOptimization woa({}, seed * 5);
    const auto result = woa.solve(inst);
    const auto truth = exact.solve(inst);
    ASSERT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_TRUE(inst.feasible(result.best));
    EXPECT_LE(result.utility, truth.utility + 1e-6);
  }
}

TEST(WoaTest, DeterministicPerSeed) {
  const EpochInstance inst = random_instance(9);
  WhaleOptimization a({}, 42);
  WhaleOptimization b({}, 42);
  EXPECT_EQ(a.solve(inst).best, b.solve(inst).best);
}

TEST(SolversOnInfeasibleInstance, AllReportInfeasible) {
  std::vector<Committee> committees{{0, 100, 1.0}, {1, 110, 2.0}};
  const EpochInstance inst(committees, 1.0, 50, 1);  // nothing fits
  SimulatedAnnealing sa({}, 1);
  DynamicProgramming dp;
  WhaleOptimization woa({}, 1);
  Greedy greedy;
  Exhaustive exact;
  EXPECT_FALSE(sa.solve(inst).feasible);
  EXPECT_FALSE(dp.solve(inst).feasible);
  EXPECT_FALSE(woa.solve(inst).feasible);
  EXPECT_FALSE(greedy.solve(inst).feasible);
  EXPECT_FALSE(exact.solve(inst).feasible);
}

// Sweep capacity tightness: every solver stays feasible and under optimum.
class SolverCapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SolverCapacitySweep, AllSolversSoundAcrossTightness) {
  const double fraction = GetParam();
  const EpochInstance inst = random_instance(21, 12, 2, fraction);
  Exhaustive exact;
  const auto truth = exact.solve(inst);
  ASSERT_TRUE(truth.feasible);

  SimulatedAnnealing sa({}, 77);
  DynamicProgramming dp;
  WhaleOptimization woa({}, 77);
  Greedy greedy;
  for (auto* solver : std::vector<mvcom::baselines::Solver*>{
           &sa, &dp, &woa, &greedy}) {
    const auto result = solver->solve(inst);
    ASSERT_TRUE(result.feasible) << solver->name();
    EXPECT_TRUE(inst.feasible(result.best)) << solver->name();
    EXPECT_LE(result.utility, truth.utility + 1e-6) << solver->name();
  }
}

INSTANTIATE_TEST_SUITE_P(CapacityFractions, SolverCapacitySweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

}  // namespace
