// Differential suite for the batched DES kernel executor (DESIGN.md §16).
//
// The contract under test: SimConfig::kernel_mode selects an executor, never
// a behavior. The batched cohort executor must fire exactly the events the
// reference slab interpreter fires, in the same (timestamp, sequence) order —
// asserted through the FNV-1a order_digest, events_executed, and full epoch
// outcomes — across every DES scenario class (baseline / faulty /
// message-overlay / churn), every lane-worker count {0, 1, 2, 8}, and a fuzz
// tier of randomized cohort shapes: same-timestamp storms, cancel-inside-
// cohort, and schedule-from-kernel re-entry. Any mismatch prints the failing
// seed so the script replays deterministically.
//
// When MVCOM_KERNEL_DETERMINISM_DIGEST names a file, the scenario matrix also
// writes one "label sha256" line per scenario, hashed over every batched-mode
// epoch field. CI runs this test in MVCOM_OBS=ON and OBS=OFF builds and diffs
// the two files — extending the kernel-mode bitwise guarantee across
// observability configurations, which no single binary can check alone.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "crypto/sha256.hpp"
#include "sharding/elastico.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::sharding::CommitteeOutcome;
using mvcom::sharding::ElasticoConfig;
using mvcom::sharding::ElasticoNetwork;
using mvcom::sharding::EpochOutcome;
using mvcom::sim::KernelMode;
using mvcom::sim::SimConfig;
using mvcom::sim::Simulator;
using mvcom::sim::TypedPayload;
using mvcom::txn::generate_trace;
using mvcom::txn::Trace;
using mvcom::txn::TraceGeneratorConfig;

// ---------------------------------------------------------------------------
// Engine-level differential tests
// ---------------------------------------------------------------------------

/// Records every executed typed event as (kernel, payload.a, at) in execution
/// order, plus the cohort sizes each kernel call received — the reference
/// interpreter must see all-ones cohorts, the batched executor the grouped
/// shape, while the flattened execution log stays identical.
struct RecordingHarness {
  explicit RecordingHarness(KernelMode mode) : sim(SimConfig{mode}) {
    k0 = sim.register_kernel(&RecordingHarness::thunk0, this);
    k1 = sim.register_kernel(&RecordingHarness::thunk1, this);
  }

  static void thunk0(void* ctx, const TypedPayload* cohort, std::size_t n) {
    static_cast<RecordingHarness*>(ctx)->record(0, cohort, n);
  }
  static void thunk1(void* ctx, const TypedPayload* cohort, std::size_t n) {
    static_cast<RecordingHarness*>(ctx)->record(1, cohort, n);
  }

  void record(int kernel, const TypedPayload* cohort, std::size_t n) {
    cohort_sizes.push_back(n);
    for (std::size_t i = 0; i < n; ++i) {
      log.push_back({kernel, cohort[i].a,
                     std::bit_cast<std::uint64_t>(sim.now().seconds())});
    }
  }

  struct Executed {
    int kernel;
    std::uint64_t payload;
    std::uint64_t at_bits;
    friend bool operator==(const Executed&, const Executed&) = default;
  };

  Simulator sim;
  mvcom::sim::KernelId k0{};
  mvcom::sim::KernelId k1{};
  std::vector<Executed> log;
  std::vector<std::size_t> cohort_sizes;
};

TEST(SimKernels, ReferenceModeInterpretsTypedEventsAsCohortsOfOne) {
  RecordingHarness h(KernelMode::kReference);
  for (std::uint64_t i = 0; i < 5; ++i) {
    h.sim.schedule_typed(SimTime(1.0), h.k0, {i, 0});
  }
  EXPECT_EQ(h.sim.run(), 5u);
  EXPECT_EQ(h.cohort_sizes, (std::vector<std::size_t>{1, 1, 1, 1, 1}));
  ASSERT_EQ(h.log.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(h.log[i].payload, i);
}

TEST(SimKernels, BatchedModeGroupsEqualTimestampSameKernelRuns) {
  RecordingHarness h(KernelMode::kBatched);
  // Three cohorts: k0 x3 @1, k1 x2 @1 (kernel switch splits), k0 x2 @2.
  for (std::uint64_t i = 0; i < 3; ++i) {
    h.sim.schedule_typed(SimTime(1.0), h.k0, {i, 0});
  }
  for (std::uint64_t i = 0; i < 2; ++i) {
    h.sim.schedule_typed(SimTime(1.0), h.k1, {10 + i, 0});
  }
  for (std::uint64_t i = 0; i < 2; ++i) {
    h.sim.schedule_typed(SimTime(2.0), h.k0, {20 + i, 0});
  }
  EXPECT_EQ(h.sim.run(), 7u);
  EXPECT_EQ(h.cohort_sizes, (std::vector<std::size_t>{3, 2, 2}));
  // FIFO within equal timestamps, payloads in schedule order.
  const std::vector<std::uint64_t> want{0, 1, 2, 10, 11, 20, 21};
  ASSERT_EQ(h.log.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(h.log[i].payload, want[i]) << "position " << i;
  }
}

TEST(SimKernels, LiveSlabEventSplitsACohort) {
  // A callback event scheduled between typed events at the same timestamp
  // must execute in its sequence position — the cohort collector may not
  // hop over it.
  std::vector<std::uint64_t> slab_hits;
  RecordingHarness h(KernelMode::kBatched);
  h.sim.schedule_typed(SimTime(1.0), h.k0, {0, 0});
  h.sim.schedule_typed(SimTime(1.0), h.k0, {1, 0});
  h.sim.schedule_at(SimTime(1.0), [&] { slab_hits.push_back(h.log.size()); });
  h.sim.schedule_typed(SimTime(1.0), h.k0, {2, 0});
  EXPECT_EQ(h.sim.run(), 4u);
  EXPECT_EQ(h.cohort_sizes, (std::vector<std::size_t>{2, 1}));
  // The slab callback ran after the first cohort (2 events) and before the
  // third typed event.
  ASSERT_EQ(slab_hits.size(), 1u);
  EXPECT_EQ(slab_hits[0], 2u);
}

TEST(SimKernels, CancelledSlabEventInsideCohortIsSkippedInBothModes) {
  for (const KernelMode mode : {KernelMode::kReference, KernelMode::kBatched}) {
    SCOPED_TRACE(mode == KernelMode::kBatched ? "batched" : "reference");
    RecordingHarness h(mode);
    h.sim.schedule_typed(SimTime(1.0), h.k0, {0, 0});
    const auto id = h.sim.schedule_at(SimTime(1.0), [] { FAIL(); });
    h.sim.schedule_typed(SimTime(1.0), h.k0, {1, 0});
    h.sim.cancel(id);
    EXPECT_EQ(h.sim.run(), 2u);
    ASSERT_EQ(h.log.size(), 2u);
    EXPECT_EQ(h.log[0].payload, 0u);
    EXPECT_EQ(h.log[1].payload, 1u);
    if (mode == KernelMode::kBatched) {
      // The tombstone between the members must not split the cohort.
      EXPECT_EQ(h.cohort_sizes, (std::vector<std::size_t>{2}));
    }
  }
}

TEST(SimKernels, RunLimitMayCutACohortWithoutLosingEvents) {
  RecordingHarness h(KernelMode::kBatched);
  for (std::uint64_t i = 0; i < 5; ++i) {
    h.sim.schedule_typed(SimTime(1.0), h.k0, {i, 0});
  }
  EXPECT_EQ(h.sim.run(3), 3u);
  EXPECT_EQ(h.cohort_sizes, (std::vector<std::size_t>{3}));
  EXPECT_EQ(h.sim.pending(), 2u);
  EXPECT_EQ(h.sim.run(), 2u);
  EXPECT_EQ(h.cohort_sizes, (std::vector<std::size_t>{3, 2}));
  ASSERT_EQ(h.log.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(h.log[i].payload, i);
}

TEST(SimKernels, RunUntilStopsTypedEventsAtTheHorizon) {
  RecordingHarness h(KernelMode::kBatched);
  h.sim.schedule_typed(SimTime(1.0), h.k0, {0, 0});
  h.sim.schedule_typed(SimTime(2.0), h.k0, {1, 0});
  h.sim.schedule_typed(SimTime(5.0), h.k0, {2, 0});
  EXPECT_EQ(h.sim.run_until(SimTime(3.0)), 2u);
  EXPECT_EQ(h.sim.now(), SimTime(3.0));
  EXPECT_EQ(h.sim.pending(), 1u);
  EXPECT_EQ(h.sim.run(), 1u);
  EXPECT_EQ(h.log.back().payload, 2u);
}

TEST(SimKernels, ScheduleFromKernelRunsAfterTheCurrentCohort) {
  // A kernel scheduling at its own timestamp gets a larger sequence number,
  // so the new event forms a later cohort — in both modes.
  for (const KernelMode mode : {KernelMode::kReference, KernelMode::kBatched}) {
    SCOPED_TRACE(mode == KernelMode::kBatched ? "batched" : "reference");
    struct Reentry {
      Simulator sim;
      mvcom::sim::KernelId k{};
      std::vector<std::uint64_t> order;
      explicit Reentry(KernelMode mode) : sim(SimConfig{mode}) {
        k = sim.register_kernel(
            [](void* ctx, const TypedPayload* cohort, std::size_t n) {
              auto* self = static_cast<Reentry*>(ctx);
              for (std::size_t i = 0; i < n; ++i) {
                self->order.push_back(cohort[i].a);
                if (cohort[i].a < 2) {
                  // Same-timestamp re-entry: must land after this cohort.
                  self->sim.schedule_typed(self->sim.now(), self->k,
                                           {cohort[i].a + 100, 0});
                }
              }
            },
            this);
      }
    } h(mode);
    h.sim.schedule_typed(SimTime(1.0), h.k, {0, 0});
    h.sim.schedule_typed(SimTime(1.0), h.k, {1, 0});
    EXPECT_EQ(h.sim.run(), 4u);
    EXPECT_EQ(h.order, (std::vector<std::uint64_t>{0, 1, 100, 101}));
  }
}

// ---------------------------------------------------------------------------
// Fuzz tier: randomized cohort shapes, cross-checked against the reference
// interpreter. Same-timestamp storms, cancels landing inside cohorts, and
// kernels that re-enter the scheduler — the failing seed is printed on any
// mismatch so the script replays.
// ---------------------------------------------------------------------------

struct FuzzResult {
  std::vector<RecordingHarness::Executed> log;
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t now_bits = 0;
};

/// Replays the deterministic script derived from `seed` under `mode`. All
/// randomness comes from Rng(seed) draws made in execution order of the
/// script — identical across modes because the per-element processing order
/// is the determinism contract itself.
FuzzResult run_fuzz_script(std::uint64_t seed, KernelMode mode) {
  struct Fuzz : RecordingHarness {
    Rng script_rng;
    std::vector<mvcom::sim::EventId> cancellable;
    int reentries_left = 64;

    Fuzz(std::uint64_t seed, KernelMode mode)
        : RecordingHarness(mode), script_rng(seed) {}

    /// Quantized timestamps force same-timestamp storms.
    SimTime grid_time(SimTime base) {
      return base + SimTime(0.25 * static_cast<double>(script_rng.below(8)));
    }

    void maybe_reenter(std::uint64_t payload) {
      // Decisions draw from script_rng in element-execution order, so both
      // modes make identical choices.
      if (reentries_left <= 0) return;
      const std::uint64_t choice = script_rng.below(8);
      if (choice == 0) {
        --reentries_left;
        // Same-timestamp schedule-from-kernel re-entry.
        sim.schedule_typed(sim.now(), payload % 2 == 0 ? k0 : k1,
                           {payload + 1000, 0});
      } else if (choice == 1) {
        --reentries_left;
        sim.schedule_typed(grid_time(sim.now()), k1, {payload + 2000, 0});
      } else if (choice == 2 && !cancellable.empty()) {
        // Cancel-inside-cohort: disarm a pending slab timer mid-cohort.
        const std::size_t idx =
            static_cast<std::size_t>(script_rng.below(cancellable.size()));
        sim.cancel(cancellable[idx]);
      }
    }
  } h(seed, mode);

  // Override the recording kernels with re-entering ones: reuse the harness
  // log via record(), then maybe re-enter.
  struct Hook {
    static void thunk0(void* ctx, const TypedPayload* cohort, std::size_t n) {
      auto* self = static_cast<Fuzz*>(ctx);
      self->record(0, cohort, n);
      for (std::size_t i = 0; i < n; ++i) self->maybe_reenter(cohort[i].a);
    }
    static void thunk1(void* ctx, const TypedPayload* cohort, std::size_t n) {
      auto* self = static_cast<Fuzz*>(ctx);
      self->record(1, cohort, n);
      for (std::size_t i = 0; i < n; ++i) self->maybe_reenter(cohort[i].a);
    }
    using Fuzz = decltype(h);
  };
  h.k0 = h.sim.register_kernel(&Hook::thunk0, &h);
  h.k1 = h.sim.register_kernel(&Hook::thunk1, &h);

  // Seed script: a mix of typed storms, slab callbacks, and pre-run cancels.
  const std::size_t ops = 64 + static_cast<std::size_t>(h.script_rng.below(64));
  for (std::size_t op = 0; op < ops; ++op) {
    const SimTime at = h.grid_time(SimTime::zero());
    switch (h.script_rng.below(4)) {
      case 0:
      case 1:
        h.sim.schedule_typed(at, h.script_rng.bernoulli(0.5) ? h.k0 : h.k1,
                             {op, 0});
        break;
      case 2:
        h.cancellable.push_back(h.sim.schedule_at(
            at, [&h, op] { h.log.push_back({2, op, 0}); }));
        break;
      default:
        if (!h.cancellable.empty() && h.script_rng.bernoulli(0.25)) {
          const std::size_t idx = static_cast<std::size_t>(
              h.script_rng.below(h.cancellable.size()));
          h.sim.cancel(h.cancellable[idx]);
        }
        break;
    }
  }
  h.sim.run();

  FuzzResult out;
  out.log = std::move(h.log);
  out.digest = h.sim.order_digest();
  out.executed = h.sim.events_executed();
  out.now_bits = std::bit_cast<std::uint64_t>(h.sim.now().seconds());
  return out;
}

TEST(SimKernelsFuzz, RandomCohortShapesMatchReferenceInterpreter) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FuzzResult ref = run_fuzz_script(seed, KernelMode::kReference);
    const FuzzResult bat = run_fuzz_script(seed, KernelMode::kBatched);
    const bool match = ref.digest == bat.digest &&
                       ref.executed == bat.executed &&
                       ref.now_bits == bat.now_bits && ref.log == bat.log;
    if (!match) {
      ADD_FAILURE() << "kernel-mode divergence at fuzz seed " << seed
                    << ": reference digest " << std::hex << ref.digest
                    << " executed " << std::dec << ref.executed
                    << " log size " << ref.log.size() << " vs batched digest "
                    << std::hex << bat.digest << " executed " << std::dec
                    << bat.executed << " log size " << bat.log.size();
      for (std::size_t i = 0; i < std::min(ref.log.size(), bat.log.size());
           ++i) {
        if (!(ref.log[i] == bat.log[i])) {
          ADD_FAILURE() << "first divergent event at index " << i
                        << ": reference (kernel " << ref.log[i].kernel
                        << ", payload " << ref.log[i].payload
                        << ") vs batched (kernel " << bat.log[i].kernel
                        << ", payload " << bat.log[i].payload << ")";
          break;
        }
      }
      return;  // one seed's dump is enough
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario-class differential matrix: every DES scenario class from the lane
// determinism matrix (baseline / faulty / message-overlay / churn) must be
// bit-identical between kernel modes at every lane-worker count.
// ---------------------------------------------------------------------------

Trace scenario_trace() {
  Rng rng(7);
  TraceGeneratorConfig tc;
  tc.num_blocks = 96;
  tc.target_total_txs = 96'000;
  return generate_trace(tc, rng);
}

ElasticoConfig scenario_config() {
  ElasticoConfig config;
  config.num_nodes = 128;
  config.committee_size = 6;
  config.committee_bits = 3;  // 8 committees: 7 member + 1 final
  config.pow_expected_solve = SimTime(600.0);
  config.link_latency_mean = SimTime(1.0);
  config.pbft.verification_mean = SimTime(0.2);
  config.pbft.view_change_timeout = SimTime(120.0);
  return config;
}

std::vector<EpochOutcome> run_epochs(const ElasticoConfig& base,
                                     KernelMode mode,
                                     std::size_t lane_workers,
                                     std::size_t epochs, const Trace& trace) {
  ElasticoConfig config = base;
  config.kernel_mode = mode;
  config.lane_workers = lane_workers;
  ElasticoNetwork network(config, Rng(4242));
  std::vector<EpochOutcome> out;
  out.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    out.push_back(network.run_epoch(trace));
  }
  return out;
}

/// Bit-exact outcome comparison (doubles via bit_cast — the contract is
/// equality, not closeness).
void expect_identical(const EpochOutcome& a, const EpochOutcome& b) {
  ASSERT_EQ(a.committees.size(), b.committees.size());
  for (std::size_t c = 0; c < a.committees.size(); ++c) {
    SCOPED_TRACE("committee " + std::to_string(c));
    const CommitteeOutcome& ca = a.committees[c];
    const CommitteeOutcome& cb = b.committees[c];
    EXPECT_EQ(ca.committee_id, cb.committee_id);
    EXPECT_EQ(ca.member_count, cb.member_count);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.formation_latency.seconds()),
              std::bit_cast<std::uint64_t>(cb.formation_latency.seconds()));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca.consensus_latency.seconds()),
              std::bit_cast<std::uint64_t>(cb.consensus_latency.seconds()));
    EXPECT_EQ(ca.committed, cb.committed);
    EXPECT_EQ(ca.view_changes, cb.view_changes);
    EXPECT_EQ(ca.tx_count, cb.tx_count);
  }
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.final_committed, b.final_committed);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.final_consensus_latency.seconds()),
            std::bit_cast<std::uint64_t>(b.final_consensus_latency.seconds()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.epoch_makespan.seconds()),
            std::bit_cast<std::uint64_t>(b.epoch_makespan.seconds()));
  EXPECT_EQ(a.final_block_txs, b.final_block_txs);
  EXPECT_EQ(a.next_epoch_randomness, b.next_epoch_randomness);
  EXPECT_EQ(a.event_order_digest, b.event_order_digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

/// SHA-256 over every outcome field — the per-scenario line in the
/// cross-build digest file (same absorption order as test_elastico_lanes).
std::string outcome_digest(const std::vector<EpochOutcome>& epochs) {
  mvcom::crypto::Sha256 h;
  const auto absorb_u64 = [&h](std::uint64_t v) {
    std::array<std::uint8_t, 8> bytes;
    for (int i = 0; i < 8; ++i) {
      bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
    h.update(bytes);
  };
  const auto absorb_time = [&](SimTime t) {
    absorb_u64(std::bit_cast<std::uint64_t>(t.seconds()));
  };
  for (const EpochOutcome& o : epochs) {
    for (const CommitteeOutcome& c : o.committees) {
      absorb_u64(c.committee_id);
      absorb_u64(c.member_count);
      absorb_time(c.formation_latency);
      absorb_time(c.consensus_latency);
      absorb_u64(c.committed ? 1 : 0);
      absorb_u64(c.view_changes);
      absorb_u64(c.tx_count);
    }
    for (const std::uint32_t id : o.selected) absorb_u64(id);
    absorb_u64(o.final_committed ? 1 : 0);
    absorb_time(o.final_consensus_latency);
    absorb_time(o.epoch_makespan);
    absorb_u64(o.final_block_txs);
    h.update(o.next_epoch_randomness);
    absorb_u64(o.event_order_digest);
    absorb_u64(o.events_executed);
  }
  return mvcom::crypto::to_hex(h.finalize());
}

void run_mode_matrix(const std::string& label, const ElasticoConfig& config) {
  SCOPED_TRACE(label);
  constexpr std::size_t kEpochs = 2;
  const Trace trace = scenario_trace();
  const std::vector<EpochOutcome> reference =
      run_epochs(config, KernelMode::kReference, 0, kEpochs, trace);
  std::size_t committed = 0;
  for (const CommitteeOutcome& c : reference.front().committees) {
    if (c.committed) ++committed;
  }
  EXPECT_GT(committed, 0u) << "degenerate epoch: nothing committed";
  EXPECT_GT(reference.front().events_executed, 0u);
  std::vector<EpochOutcome> last_batched;
  for (const std::size_t workers : {0u, 1u, 2u, 8u}) {
    SCOPED_TRACE("lane_workers=" + std::to_string(workers));
    std::vector<EpochOutcome> batched =
        run_epochs(config, KernelMode::kBatched, workers, kEpochs, trace);
    ASSERT_EQ(reference.size(), batched.size());
    for (std::size_t e = 0; e < reference.size(); ++e) {
      SCOPED_TRACE("epoch " + std::to_string(e));
      expect_identical(reference[e], batched[e]);
    }
    last_batched = std::move(batched);
  }
  // Cross-build witness: appended per scenario when CI asks for it.
  const char* digest_path = std::getenv("MVCOM_KERNEL_DETERMINISM_DIGEST");
  if (digest_path != nullptr && *digest_path != '\0') {
    std::ofstream digest_out(digest_path, std::ios::app);
    ASSERT_TRUE(digest_out) << "cannot open " << digest_path;
    digest_out << label << " " << outcome_digest(last_batched) << "\n";
  }
}

TEST(SimKernelsDifferential, BaselineScenario) {
  run_mode_matrix("baseline", scenario_config());
}

TEST(SimKernelsDifferential, FaultyScenario) {
  ElasticoConfig config = scenario_config();
  config.node_failure_probability = 0.10;
  config.message_loss_probability = 0.02;
  run_mode_matrix("faulty", config);
}

TEST(SimKernelsDifferential, MessageOverlayScenario) {
  ElasticoConfig config = scenario_config();
  config.message_level_overlay = true;
  run_mode_matrix("message_overlay", config);
}

TEST(SimKernelsDifferential, ChurnScenario) {
  // Heavy churn: a third of the nodes down and lossy links every epoch —
  // drops, view changes, and horizon aborts dominate the event stream.
  ElasticoConfig config = scenario_config();
  config.node_failure_probability = 0.33;
  config.message_loss_probability = 0.10;
  config.pbft.view_change_timeout = SimTime(30.0);
  run_mode_matrix("churn", config);
}

}  // namespace
