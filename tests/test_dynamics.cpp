// Tests for the online dynamics harness (Fig. 9/14 machinery) and the
// cross-epoch carry-over rule (Fig. 3).

#include "mvcom/dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace {

using mvcom::core::Committee;
using mvcom::core::DynamicEvent;
using mvcom::core::DynamicTrace;
using mvcom::core::EpochChainParams;
using mvcom::core::EpochInstance;
using mvcom::core::run_epoch_chain;
using mvcom::core::run_with_events;
using mvcom::core::SeParams;
using mvcom::core::SeScheduler;

std::vector<Committee> make_committees(std::uint64_t seed, std::size_t n) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  for (std::size_t i = 0; i < n; ++i) {
    committees.push_back({static_cast<std::uint32_t>(i),
                          600 + rng.below(1000),
                          600.0 + rng.uniform(0.0, 800.0)});
  }
  return committees;
}

EpochInstance make_instance(std::uint64_t seed, std::size_t n = 12,
                            std::size_t n_min = 3) {
  auto committees = make_committees(seed, n);
  std::uint64_t total = 0;
  for (const auto& c : committees) total += c.txs;
  return EpochInstance(std::move(committees), 1.5, (total * 7) / 10, n_min);
}

SeParams quick_params() {
  SeParams p;
  p.threads = 2;
  return p;
}

TEST(RunWithEventsTest, TracesEveryIterationAndMarksEvents) {
  SeScheduler scheduler(make_instance(1), quick_params(), 1);
  std::vector<DynamicEvent> events;
  events.push_back({200, DynamicEvent::Kind::kJoin, {50, 900, 1100.0}});
  events.push_back({400, DynamicEvent::Kind::kLeave, {50, 0, 0.0}});
  const DynamicTrace trace = run_with_events(scheduler, 600, events);
  EXPECT_EQ(trace.utility.size(), 600u);
  EXPECT_EQ(trace.event_iterations.size(), 2u);
  EXPECT_EQ(trace.event_iterations[0], 200u);
  EXPECT_EQ(trace.event_iterations[1], 400u);
  EXPECT_FALSE(trace.final_selection.empty());
  EXPECT_TRUE(scheduler.instance().feasible(trace.final_selection));
}

TEST(RunWithEventsTest, LeaveOfSelectedCommitteeDipsThenRecovers) {
  // Fig. 9(a): "the performance perturbation brought by the leaving event is
  // shown pretty large ... SE can still quickly find a pretty good converged
  // solution with a trimmed solution space."
  SeScheduler scheduler(make_instance(2, 14, 3), quick_params(), 2);
  // Converge first.
  for (int i = 0; i < 1000; ++i) scheduler.step();
  const double converged = scheduler.current_utility();
  ASSERT_FALSE(std::isnan(converged));

  // Remove the highest-gain selected committee.
  const auto selection = scheduler.current_selection();
  std::uint32_t victim = 0;
  double best_gain = -1e300;
  for (std::size_t i = 0; i < selection.size(); ++i) {
    if (selection[i] && scheduler.instance().gain(i) > best_gain) {
      best_gain = scheduler.instance().gain(i);
      victim = scheduler.instance().committees()[i].id;
    }
  }
  scheduler.remove_committee(victim);
  const double at_failure = scheduler.current_utility();
  // Removing the most valuable member cannot improve the best utility.
  if (!std::isnan(at_failure)) {
    EXPECT_LE(at_failure, converged + 1e-9);
  }
  for (int i = 0; i < 1500; ++i) scheduler.step();
  const double recovered = scheduler.current_utility();
  ASSERT_FALSE(std::isnan(recovered));
  if (!std::isnan(at_failure)) {
    EXPECT_GE(recovered, at_failure - 1e-9);
  }
  EXPECT_LE(recovered, converged + 1e-9);  // trimmed space can't beat F
}

TEST(RunWithEventsTest, ConsecutiveJoinsKeepFeasibility) {
  // Fig. 9(b) / Fig. 14: consecutive joining events.
  auto committees = make_committees(3, 8);
  std::uint64_t total = 0;
  for (const auto& c : committees) total += c.txs;
  EpochInstance inst(committees, 1.5, total, 2);
  SeScheduler scheduler(inst, quick_params(), 3);
  std::vector<DynamicEvent> events;
  mvcom::common::Rng rng(33);
  for (std::size_t j = 0; j < 6; ++j) {
    events.push_back({100 + 150 * j,
                      DynamicEvent::Kind::kJoin,
                      {static_cast<std::uint32_t>(100 + j),
                       600 + rng.below(800), 700.0 + rng.uniform(0.0, 600.0)}});
  }
  const DynamicTrace trace = run_with_events(scheduler, 1200, events);
  EXPECT_EQ(scheduler.instance().size(), 14u);
  EXPECT_TRUE(scheduler.instance().feasible(trace.final_selection));
  // Utility after all joins should exceed the pre-join converged level:
  // more committees strictly widen the feasible set... up to deadline
  // effects, so we only require it to be finite and positive here.
  EXPECT_FALSE(std::isnan(trace.final_utility));
}

TEST(EpochChainTest, RefusedCommitteesCarryOverWithReducedLatency) {
  // Two epochs; capacity so tight in epoch 1 that someone must be refused.
  std::vector<std::vector<Committee>> fresh(2);
  fresh[0] = make_committees(4, 10);
  fresh[1] = make_committees(5, 4);
  std::uint64_t epoch1_total = 0;
  for (const auto& c : fresh[0]) epoch1_total += c.txs;

  EpochChainParams params;
  params.alpha = 1.5;
  params.capacity = epoch1_total / 2;  // refuse roughly half
  params.n_min = 2;
  params.se = SeParams{};
  params.se.threads = 2;
  params.se.max_iterations = 2000;

  const auto result = run_epoch_chain(fresh, params, 7);
  ASSERT_EQ(result.epoch_utilities.size(), 2u);
  ASSERT_EQ(result.refused_counts.size(), 2u);
  EXPECT_GT(result.refused_counts[0], 0u);
  EXPECT_GT(result.total_permitted_txs, 0u);
  EXPECT_GT(result.epoch_utilities[0], 0.0);
}

TEST(EpochChainTest, EmptyScheduleYieldsEmptyResult) {
  const auto result = run_epoch_chain({}, EpochChainParams{}, 1);
  EXPECT_TRUE(result.epoch_utilities.empty());
  EXPECT_EQ(result.total_permitted_txs, 0u);
}

}  // namespace
