// Tests for the discrete-event simulation kernel.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using mvcom::common::SimTime;
using mvcom::sim::EventId;
using mvcom::sim::Simulator;

TEST(SimTimeTest, ArithmeticAndComparisons) {
  constexpr SimTime a(2.0);
  constexpr SimTime b(3.5);
  static_assert((a + b).seconds() == 5.5);
  static_assert((b - a).seconds() == 1.5);
  static_assert((2.0 * a).seconds() == 4.0);
  static_assert(a < b);
  static_assert(SimTime::zero() < a);
  SimTime c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.seconds(), 5.5);
  c -= a;
  EXPECT_DOUBLE_EQ(c.seconds(), 3.5);
}

TEST(SimTimeTest, InfinitySemantics) {
  constexpr SimTime never = SimTime::infinity();
  static_assert(never.is_infinite());
  static_assert(!SimTime(1e18).is_infinite());
  EXPECT_GT(never, SimTime(1e300));
  // Infinity absorbs addition — a failed committee's ping never returns.
  EXPECT_TRUE((never + SimTime(5.0)).is_infinite());
}

TEST(SimulatorTest, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime(3.0), [&] { order.push_back(3); });
  sim.schedule_at(SimTime(1.0), [&] { order.push_back(1); });
  sim.schedule_at(SimTime(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 3.0);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(SimTime(5.0), [&] {
    sim.schedule_after(SimTime(2.0), [&] { fired_at = sim.now().seconds(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime(10.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime(5.0), [] {}), std::logic_error);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(SimTime(1.0), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownOrFiredIsNoop) {
  Simulator sim;
  const EventId id = sim.schedule_at(SimTime(1.0), [] {});
  sim.run();
  sim.cancel(id);              // already fired
  sim.cancel(EventId{9999});   // never existed
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, RunWithLimitStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime(static_cast<double>(i)), [&] { ++count; });
  }
  EXPECT_EQ(sim.run(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.pending(), 3u);
}

TEST(SimulatorTest, RunUntilHonorsHorizon) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(SimTime(t), [&fired, &sim] {
      fired.push_back(sim.now().seconds());
    });
  }
  sim.run_until(SimTime(2.5));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 2.5);  // clock advances to horizon
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilExecutesEventsSpawnedWithinHorizon) {
  Simulator sim;
  int chain = 0;
  sim.schedule_at(SimTime(1.0), [&] {
    ++chain;
    sim.schedule_after(SimTime(0.5), [&] { ++chain; });
  });
  sim.run_until(SimTime(2.0));
  EXPECT_EQ(chain, 2);
}

TEST(SimulatorTest, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(SimTime(1.0), [&] { fired = true; });
  sim.schedule_at(SimTime(2.0), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.run_until(SimTime(3.0)), 1u);
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, PendingAndExecutedCounters) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(SimTime(static_cast<double>(i)), [] {});
  }
  const EventId id = sim.schedule_at(SimTime(10.0), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 4u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 4u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, EventsCanScheduleRecursively) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(SimTime(1.0), recurse);
  };
  sim.schedule_at(SimTime(0.0), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 99.0);
}

}  // namespace
