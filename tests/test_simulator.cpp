// Tests for the discrete-event simulation kernel.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace {

using mvcom::common::SimTime;
using mvcom::sim::EventId;
using mvcom::sim::Simulator;

TEST(SimTimeTest, ArithmeticAndComparisons) {
  constexpr SimTime a(2.0);
  constexpr SimTime b(3.5);
  static_assert((a + b).seconds() == 5.5);
  static_assert((b - a).seconds() == 1.5);
  static_assert((2.0 * a).seconds() == 4.0);
  static_assert(a < b);
  static_assert(SimTime::zero() < a);
  SimTime c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.seconds(), 5.5);
  c -= a;
  EXPECT_DOUBLE_EQ(c.seconds(), 3.5);
}

TEST(SimTimeTest, InfinitySemantics) {
  constexpr SimTime never = SimTime::infinity();
  static_assert(never.is_infinite());
  static_assert(!SimTime(1e18).is_infinite());
  EXPECT_GT(never, SimTime(1e300));
  // Infinity absorbs addition — a failed committee's ping never returns.
  EXPECT_TRUE((never + SimTime(5.0)).is_infinite());
}

TEST(SimulatorTest, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime(3.0), [&] { order.push_back(3); });
  sim.schedule_at(SimTime(1.0), [&] { order.push_back(1); });
  sim.schedule_at(SimTime(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 3.0);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(SimTime(5.0), [&] {
    sim.schedule_after(SimTime(2.0), [&] { fired_at = sim.now().seconds(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime(10.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime(5.0), [] {}), std::logic_error);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(SimTime(1.0), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownOrFiredIsNoop) {
  Simulator sim;
  const EventId id = sim.schedule_at(SimTime(1.0), [] {});
  sim.run();
  sim.cancel(id);              // already fired
  sim.cancel(EventId{9999});   // never existed
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, RunWithLimitStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime(static_cast<double>(i)), [&] { ++count; });
  }
  EXPECT_EQ(sim.run(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.pending(), 3u);
}

TEST(SimulatorTest, RunUntilHonorsHorizon) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(SimTime(t), [&fired, &sim] {
      fired.push_back(sim.now().seconds());
    });
  }
  sim.run_until(SimTime(2.5));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 2.5);  // clock advances to horizon
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunUntilExecutesEventsSpawnedWithinHorizon) {
  Simulator sim;
  int chain = 0;
  sim.schedule_at(SimTime(1.0), [&] {
    ++chain;
    sim.schedule_after(SimTime(0.5), [&] { ++chain; });
  });
  sim.run_until(SimTime(2.0));
  EXPECT_EQ(chain, 2);
}

TEST(SimulatorTest, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(SimTime(1.0), [&] { fired = true; });
  sim.schedule_at(SimTime(2.0), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.run_until(SimTime(3.0)), 1u);
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, PendingAndExecutedCounters) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_at(SimTime(static_cast<double>(i)), [] {});
  }
  const EventId id = sim.schedule_at(SimTime(10.0), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 4u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 4u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, EventsCanScheduleRecursively) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(SimTime(1.0), recurse);
  };
  sim.schedule_at(SimTime(0.0), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 99.0);
}

// --- Generation-stamped slot semantics ------------------------------------

TEST(SimulatorTest, StaleIdCannotCancelRecycledSlot) {
  Simulator sim;
  bool first = false;
  bool second = false;
  const EventId stale = sim.schedule_at(SimTime(1.0), [&] { first = true; });
  sim.cancel(stale);  // slot goes back to the free list, generation bumped
  const EventId fresh = sim.schedule_at(SimTime(1.0), [&] { second = true; });
  sim.cancel(stale);  // must NOT hit the recycled slot's new incarnation
  sim.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_NE(stale.value, fresh.value);
}

TEST(SimulatorTest, SlotChurnAcrossChunkBoundaries) {
  // Waves larger than one 64-slot chunk force slab growth, then recycling;
  // counts must stay exact through heavy slot reuse.
  Simulator sim;
  std::size_t fired = 0;
  for (int wave = 0; wave < 8; ++wave) {
    for (int i = 0; i < 150; ++i) {
      sim.schedule_after(SimTime(1.0 + i), [&] { ++fired; });
    }
    sim.run();
    EXPECT_TRUE(sim.empty());
  }
  EXPECT_EQ(fired, 8u * 150u);
  EXPECT_EQ(sim.events_executed(), 8u * 150u);
}

TEST(SimulatorTest, HeapOrderingStressMatchesReferenceSort) {
  // Adversarial mix of timestamps (with many duplicates) against a stable
  // reference sort — the 4-ary heap plus seq tie-break must agree exactly.
  Simulator sim;
  std::vector<int> fired_order;
  std::vector<std::pair<double, int>> reference;
  std::uint64_t state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double at = static_cast<double>((state >> 33) % 37);
    reference.emplace_back(at, i);
    sim.schedule_at(SimTime(at), [&fired_order, i] { fired_order.push_back(i); });
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run();
  ASSERT_EQ(fired_order.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(fired_order[i], reference[i].second) << "position " << i;
  }
}

TEST(SimulatorTest, LargeCapturesFallBackToHeapAndStayIntact) {
  // A capture bigger than EventCallback::kInlineCapacity takes the boxed
  // path; the payload must arrive unscathed and cancel must destroy it.
  Simulator sim;
  std::array<double, 32> big{};
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i);
  static_assert(sizeof(big) > mvcom::sim::EventCallback::kInlineCapacity);
  double sum = 0.0;
  sim.schedule_at(SimTime(1.0), [big, &sum] {
    for (const double v : big) sum += v;
  });
  const EventId doomed =
      sim.schedule_at(SimTime(2.0), [big, &sum] { sum += 1e9 + big[0]; });
  sim.cancel(doomed);  // boxed callback destroyed without running
  sim.run();
  EXPECT_DOUBLE_EQ(sum, 31.0 * 32.0 / 2.0);
}

TEST(SimulatorTest, RunUntilDrainsTombstonesAndAdvancesClock) {
  Simulator sim;
  const EventId a = sim.schedule_at(SimTime(1.0), [] {});
  const EventId b = sim.schedule_at(SimTime(2.0), [] {});
  sim.cancel(a);
  sim.cancel(b);
  EXPECT_EQ(sim.run_until(SimTime(5.0)), 0u);
  EXPECT_TRUE(sim.empty());
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 5.0);
}

// --- Event-order digest ----------------------------------------------------

TEST(SimulatorTest, OrderDigestIsReproducible) {
  const auto run_workload = [] {
    Simulator sim;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime(static_cast<double>((i * 7) % 13)), [] {});
    }
    sim.run();
    return sim.order_digest();
  };
  EXPECT_EQ(run_workload(), run_workload());
}

TEST(SimulatorTest, OrderDigestDistinguishesScheduleOrder) {
  // Same event *set*, different insertion order => different FIFO seq
  // assignment => different digest. This is exactly the sensitivity the
  // lane determinism matrix relies on.
  Simulator forward;
  Simulator backward;
  for (int i = 0; i < 8; ++i) {
    forward.schedule_at(SimTime(1.0), [] {});
    backward.schedule_at(SimTime(static_cast<double>(8 - i)), [] {});
  }
  forward.run();
  backward.run();
  EXPECT_NE(forward.order_digest(), backward.order_digest());
  EXPECT_EQ(forward.events_executed(), backward.events_executed());
}

TEST(SimulatorTest, FreshSimulatorsShareTheDigestBasis) {
  Simulator a;
  Simulator b;
  EXPECT_EQ(a.order_digest(), b.order_digest());
  a.schedule_at(SimTime(1.0), [] {});
  a.run();
  EXPECT_NE(a.order_digest(), b.order_digest());
}

}  // namespace
