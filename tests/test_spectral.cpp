// Tests for the spectral-gap analysis (citation [19] machinery): exact gaps
// on hand-solvable chains, the relaxation-time sandwich against empirical
// mixing, and Remark 2's beta dependence measured spectrally.

#include "analysis/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/convergence.hpp"
#include "common/rng.hpp"
#include "mvcom/problem.hpp"

namespace {

using mvcom::analysis::enumerate_space;
using mvcom::analysis::spectral_gap;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;

EpochInstance uniform_instance(std::size_t n) {
  // Equal utilities: the chain is a symmetric random walk on the Johnson
  // graph J(n, k) whose spectrum is known in closed form.
  std::vector<Committee> committees;
  for (std::uint32_t i = 0; i < n; ++i) {
    committees.push_back({i, 10, 5.0});
  }
  return EpochInstance(std::move(committees), 1.0, 10'000, 0, 10.0);
}

EpochInstance random_instance(std::uint64_t seed, std::size_t n) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  for (std::uint32_t i = 0; i < n; ++i) {
    committees.push_back({i, 2 + rng.below(6), rng.uniform(0.0, 4.0)});
  }
  return EpochInstance(std::move(committees), 1.0, 10'000, 0);
}

TEST(SpectralTest, TwoStateChainHasKnownGap) {
  // Two states {a}, {b} with equal utility: rates q_ab = q_ba = 1
  // (τ = 0, ΔU = 0). The generator's nonzero eigenvalue is 2.
  const EpochInstance inst = uniform_instance(2);
  const auto space = enumerate_space(inst, 1);
  ASSERT_EQ(space.states.size(), 2u);
  const auto result = spectral_gap(space, 1.0, 0.0);
  EXPECT_NEAR(result.gap, 2.0, 1e-6);
  EXPECT_NEAR(result.relaxation_time, 0.5, 1e-6);
  EXPECT_NEAR(result.pi_min, 0.5, 1e-9);
}

TEST(SpectralTest, JohnsonGraphGapMatchesClosedForm) {
  // J(n, k) with unit edge rates: the walk's generator has second-smallest
  // nonzero eigenvalue n (for the k(n−k)-regular swap walk, gap = n).
  // Check n=6, k=3: gap = 6.
  const EpochInstance inst = uniform_instance(6);
  const auto space = enumerate_space(inst, 3);
  ASSERT_EQ(space.states.size(), 20u);
  const auto result = spectral_gap(space, 1.0, 0.0);
  EXPECT_NEAR(result.gap, 6.0, 1e-5);
}

TEST(SpectralTest, GapIsPositiveOnIrreducibleSpaces) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const EpochInstance inst = random_instance(seed, 8);
    const auto space = enumerate_space(inst, 4);
    const auto result = spectral_gap(space, 1.0, 0.0);
    EXPECT_GT(result.gap, 0.0) << "seed " << seed;
    EXPECT_GT(result.pi_min, 0.0);
    EXPECT_LT(result.t_mix_lower(0.01), result.t_mix_upper(0.01));
  }
}

TEST(SpectralTest, RelaxationSandwichBracketsEmpiricalMixing) {
  // The empirical t_mix(ε) from Gillespie trajectories must respect
  // (t_rel − 1)·ln(1/2ε) ≤ t_mix ≤ t_rel·ln(1/(ε·π_min)).
  const EpochInstance inst = random_instance(5, 7);
  const auto space = enumerate_space(inst, 3);
  const double epsilon = 0.05;
  const auto spectral = spectral_gap(space, 1.0, 0.0);
  mvcom::common::Rng rng(6);
  const auto empirical = mvcom::analysis::estimate_mixing_time(
      space, 1.0, 0.0, epsilon, 8.0 * spectral.t_mix_upper(epsilon), 6000, 12,
      rng);
  ASSERT_GT(empirical.t_mix, 0.0) << "did not mix within the horizon";
  EXPECT_LE(empirical.t_mix, spectral.t_mix_upper(epsilon) * 1.1);
  // The lower bound uses the exact distribution; the empirical estimate is
  // on a coarse checkpoint grid, so allow a grid factor of 2.
  EXPECT_GE(2.0 * empirical.t_mix, spectral.t_mix_lower(epsilon));
}

TEST(SpectralTest, LargerBetaShrinksTheUniformizedGap) {
  // Remark 2, measured spectrally: sharper stationary laws need more
  // *transitions* to mix. (The raw CTMC gap can grow with beta because the
  // absolute rates exp(½βΔU) explode; the uniformized, per-transition gap
  // is the algorithmically meaningful one.)
  for (std::uint64_t seed = 5; seed <= 8; ++seed) {
    const EpochInstance inst = random_instance(seed, 7);
    const auto space = enumerate_space(inst, 3);
    const auto gentle = spectral_gap(space, 0.5, 0.0);
    const auto sharp = spectral_gap(space, 4.0, 0.0);
    EXPECT_LT(sharp.uniformized_gap(), gentle.uniformized_gap())
        << "seed " << seed;
    EXPECT_GT(sharp.max_exit_rate, gentle.max_exit_rate);
  }
}

TEST(SpectralTest, RejectsDegenerateSpaces) {
  const EpochInstance inst = uniform_instance(3);
  const auto singleton = enumerate_space(inst, 0);
  EXPECT_THROW(static_cast<void>(spectral_gap(singleton, 1.0, 0.0)),
               std::invalid_argument);
}

}  // namespace
