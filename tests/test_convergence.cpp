// Tests for the empirical mixing-time estimator and the RandomSelect floor
// baseline, plus cross-mode consistency of the two SE transition kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/convergence.hpp"
#include "analysis/theory.hpp"
#include "baselines/exhaustive.hpp"
#include "baselines/random_select.hpp"
#include "common/rng.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

using mvcom::analysis::enumerate_space;
using mvcom::analysis::estimate_mixing_time;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;
using mvcom::core::SeParams;
using mvcom::core::SeScheduler;
using mvcom::core::SeTransition;

EpochInstance small_instance(std::uint64_t seed, std::size_t n = 8) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  for (std::size_t i = 0; i < n; ++i) {
    committees.push_back({static_cast<std::uint32_t>(i), 2 + rng.below(6),
                          rng.uniform(0.0, 4.0)});
  }
  return EpochInstance(std::move(committees), 1.0, 10'000, 0);
}

TEST(MixingEstimateTest, TvDistanceDecreasesOverTime) {
  const EpochInstance inst = small_instance(1, 7);
  const auto space = enumerate_space(inst, 3);
  mvcom::common::Rng rng(2);
  const auto estimate = estimate_mixing_time(space, 1.0, 0.0, /*epsilon=*/0.1,
                                             /*horizon=*/64.0,
                                             /*trajectories=*/4000,
                                             /*checkpoints=*/8, rng);
  ASSERT_EQ(estimate.tv_distance.size(), 8u);
  // Early checkpoints far from stationary, late ones close.
  EXPECT_GT(estimate.tv_distance.front(), estimate.tv_distance.back());
  EXPECT_LT(estimate.tv_distance.back(), 0.1);
  EXPECT_GT(estimate.t_mix, 0.0);
}

TEST(MixingEstimateTest, SharperBetaMixesNoFasterToTighterTargets) {
  // Remark 2's tradeoff, measured: larger beta concentrates the stationary
  // law but slows mixing (in chain time).
  const EpochInstance inst = small_instance(3, 7);
  const auto space = enumerate_space(inst, 3);
  mvcom::common::Rng rng_a(4);
  mvcom::common::Rng rng_b(4);
  const auto gentle = estimate_mixing_time(space, 0.5, 0.0, 0.05, 256.0,
                                           4000, 10, rng_a);
  const auto sharp = estimate_mixing_time(space, 3.0, 0.0, 0.05, 256.0,
                                          4000, 10, rng_b);
  ASSERT_GT(gentle.t_mix, 0.0);
  if (sharp.t_mix > 0.0) {
    EXPECT_GE(sharp.t_mix, gentle.t_mix);
  }  // else: did not mix within the horizon — even stronger evidence
}

TEST(MixingEstimateTest, RejectsDegenerateInputs) {
  const EpochInstance inst = small_instance(5, 6);
  const auto space = enumerate_space(inst, 2);
  mvcom::common::Rng rng(6);
  EXPECT_THROW(estimate_mixing_time(space, 1.0, 0.0, 0.1, 10.0, 0, 4, rng),
               std::invalid_argument);
  EXPECT_THROW(estimate_mixing_time(space, 1.0, 0.0, 0.1, 10.0, 10, 0, rng),
               std::invalid_argument);
}

TEST(RandomSelectTest, FeasibleAndBelowExhaustive) {
  mvcom::baselines::Exhaustive exact;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    mvcom::common::Rng rng(seed);
    std::vector<Committee> committees;
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < 12; ++i) {
      Committee c{i, 500 + rng.below(1500), 600.0 + rng.uniform(0.0, 900.0)};
      total += c.txs;
      committees.push_back(c);
    }
    const EpochInstance inst(committees, 1.5, (total * 7) / 10, 3);
    mvcom::baselines::RandomSelect random({}, seed);
    const auto result = random.solve(inst);
    const auto truth = exact.solve(inst);
    ASSERT_TRUE(result.feasible);
    EXPECT_TRUE(inst.feasible(result.best));
    EXPECT_LE(result.utility, truth.utility + 1e-6);
  }
}

TEST(RandomSelectTest, MoreTrialsNeverHurt) {
  const EpochInstance inst = small_instance(9, 12);
  mvcom::baselines::RandomSelect few({4}, 1);
  mvcom::baselines::RandomSelect many({256}, 1);
  const auto few_result = few.solve(inst);
  const auto many_result = many.solve(inst);
  ASSERT_TRUE(few_result.feasible && many_result.feasible);
  EXPECT_GE(many_result.utility, few_result.utility);
}

// --- SE transition-kernel consistency -----------------------------------------

TEST(SeTransitionModesTest, BothKernelsReachTheSameOptimumNeighborhood) {
  mvcom::baselines::Exhaustive exact;
  mvcom::common::Rng rng(11);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 12; ++i) {
    Committee c{i, 500 + rng.below(1500), 600.0 + rng.uniform(0.0, 900.0)};
    total += c.txs;
    committees.push_back(c);
  }
  const EpochInstance inst(committees, 1.5, (total * 7) / 10, 3);
  const auto truth = exact.solve(inst);
  ASSERT_TRUE(truth.feasible);

  SeParams parallel;
  parallel.threads = 4;
  parallel.max_iterations = 1500;
  parallel.transition = SeTransition::kChainParallel;
  SeParams race = parallel;
  race.transition = SeTransition::kTimerRace;
  race.max_iterations = 8000;  // one transition/iter needs a bigger budget

  SeScheduler chain_scheduler(inst, parallel, 42);
  SeScheduler race_scheduler(inst, race, 42);
  const auto chain_result = chain_scheduler.run();
  const auto race_result = race_scheduler.run();
  ASSERT_TRUE(chain_result.feasible);
  ASSERT_TRUE(race_result.feasible);
  EXPECT_GE(chain_result.utility, 0.95 * truth.utility);
  EXPECT_GE(race_result.utility, 0.95 * truth.utility);
  EXPECT_NEAR(chain_result.utility, race_result.utility,
              0.05 * std::abs(truth.utility));
}

TEST(SeSharingTest, SharingNeverDegradesConvergedUtility) {
  const EpochInstance inst = small_instance(13, 14);
  SeParams sharing;
  sharing.threads = 4;
  sharing.max_iterations = 800;
  sharing.share_interval = 50;
  SeParams isolated = sharing;
  isolated.share_interval = 0;
  SeScheduler with(inst, sharing, 7);
  SeScheduler without(inst, isolated, 7);
  const auto with_result = with.run();
  const auto without_result = without.run();
  ASSERT_TRUE(with_result.feasible && without_result.feasible);
  EXPECT_GE(with_result.utility, without_result.utility - 1e-9);
}

}  // namespace
