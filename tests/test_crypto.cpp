// Tests for crypto/sha256 (NIST vectors), crypto/merkle, and crypto/pow.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/merkle.hpp"
#include "crypto/pow.hpp"
#include "crypto/sha256.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::crypto::Digest;
using mvcom::crypto::MerkleTree;
using mvcom::crypto::PowTarget;
using mvcom::crypto::Sha256;
using mvcom::crypto::to_hex;

// --- SHA-256 (FIPS 180-4 test vectors) -------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(to_hex(h.finalize()), to_hex(Sha256::hash("hello world")));
}

TEST(Sha256Test, ExactBlockBoundary) {
  const std::string msg(64, 'x');
  Sha256 h;
  h.update(msg);
  EXPECT_EQ(to_hex(h.finalize()), to_hex(Sha256::hash(msg)));
  const std::string msg55(55, 'y');
  const std::string msg56(56, 'y');
  EXPECT_NE(to_hex(Sha256::hash(msg55)), to_hex(Sha256::hash(msg56)));
}

TEST(Sha256Test, DoubleHashDiffersFromSingle) {
  EXPECT_NE(to_hex(Sha256::double_hash("abc")), to_hex(Sha256::hash("abc")));
}

TEST(Sha256Test, Leading64IsBigEndianPrefix) {
  Digest d{};
  d[0] = 0x01;
  d[7] = 0xff;
  EXPECT_EQ(mvcom::crypto::leading64(d), 0x01000000000000ffULL);
}

TEST(Sha256Test, LeadingZeroBits) {
  Digest d{};
  d[0] = 0x00;
  d[1] = 0x10;  // 3 leading zero bits within this byte
  EXPECT_EQ(mvcom::crypto::leading_zero_bits(d), 11);
  Digest all_zero{};
  EXPECT_EQ(mvcom::crypto::leading_zero_bits(all_zero), 256);
}

// --- Merkle tree ------------------------------------------------------------

std::vector<Digest> make_leaves(std::size_t n) {
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTest, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
}

TEST(MerkleTest, RootIsDeterministic) {
  const MerkleTree a(make_leaves(7));
  const MerkleTree b(make_leaves(7));
  EXPECT_EQ(a.root(), b.root());
}

TEST(MerkleTest, RootDependsOnEveryLeaf) {
  auto leaves = make_leaves(8);
  const MerkleTree original(leaves);
  leaves[5] = Sha256::hash("tampered");
  const MerkleTree tampered(leaves);
  EXPECT_NE(original.root(), tampered.root());
}

TEST(MerkleTest, EmptyTreeHasConventionRoot) {
  const MerkleTree tree({});
  EXPECT_EQ(tree.root(), Sha256::hash(std::string_view{}));
  EXPECT_EQ(tree.leaf_count(), 0u);
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllLeavesProveInclusion) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(leaves[i], proof, tree.root()))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofTest, TamperedLeafFailsVerification) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree(leaves);
  const auto proof = tree.prove(0);
  const Digest wrong = Sha256::hash("not-the-leaf");
  EXPECT_FALSE(MerkleTree::verify(wrong, proof, tree.root()));
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 64));

// --- Proof of Work ----------------------------------------------------------

TEST(PowTest, SolveAndVerifyRoundtrip) {
  const PowTarget target = PowTarget::from_difficulty_bits(10);
  const auto solution =
      mvcom::crypto::solve("epoch-rand", "node-1", target, 1u << 16);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(mvcom::crypto::verify("epoch-rand", "node-1", target, *solution));
}

TEST(PowTest, VerifyRejectsWrongIdentity) {
  const PowTarget target = PowTarget::from_difficulty_bits(8);
  const auto solution =
      mvcom::crypto::solve("epoch-rand", "node-1", target, 1u << 16);
  ASSERT_TRUE(solution.has_value());
  EXPECT_FALSE(
      mvcom::crypto::verify("epoch-rand", "node-2", target, *solution));
}

TEST(PowTest, HarderTargetNeedsMoreAttempts) {
  EXPECT_GT(PowTarget::from_difficulty_bits(16).expected_attempts(),
            PowTarget::from_difficulty_bits(8).expected_attempts());
  EXPECT_NEAR(PowTarget::from_difficulty_bits(8).expected_attempts(), 256.0,
              1.0);
}

TEST(PowTest, UnsolvableTargetGivesUp) {
  // leading64_below = 1 is ~2^-64 per attempt; 100 tries will fail.
  const PowTarget target{1};
  EXPECT_FALSE(mvcom::crypto::solve("r", "id", target, 100).has_value());
}

TEST(PowTest, MidstateMatchesFullPreimageHash) {
  // The midstate path (prefix absorbed once, nonce re-hashed per attempt)
  // must be bit-identical to hashing the documented preimage from scratch,
  // across nonce widths including the 20-digit maximum.
  const mvcom::crypto::PowMidstate midstate("epoch-rand", "node-7");
  for (const std::uint64_t nonce :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{9}, std::uint64_t{10},
        std::uint64_t{123456789}, std::uint64_t{0xffffffffULL},
        std::numeric_limits<std::uint64_t>::max()}) {
    const Digest naive = Sha256::hash("epoch-rand|node-7|" +
                                      std::to_string(nonce));
    EXPECT_EQ(midstate.digest(nonce), naive) << "nonce " << nonce;
    EXPECT_EQ(mvcom::crypto::pow_digest("epoch-rand", "node-7", nonce), naive)
        << "nonce " << nonce;
  }
}

TEST(PowTest, MidstateSolveAgreesWithVerifier) {
  // solve() grinds through the midstate; whatever it finds must pass the
  // from-scratch verifier, and the winning nonce must be the first one.
  const PowTarget target = PowTarget::from_difficulty_bits(10);
  const auto solution = mvcom::crypto::solve("epoch-rand", "node-3", target,
                                             1u << 16);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(mvcom::crypto::verify("epoch-rand", "node-3", target, *solution));
  for (std::uint64_t nonce = 0; nonce < solution->nonce; ++nonce) {
    EXPECT_GE(mvcom::crypto::leading64(
                  mvcom::crypto::pow_digest("epoch-rand", "node-3", nonce)),
              target.leading64_below);
  }
}

TEST(PowTest, CommitteeAssignmentStaysInRange) {
  for (int bits : {1, 2, 4, 8}) {
    for (int i = 0; i < 200; ++i) {
      const Digest d = Sha256::hash("x" + std::to_string(i));
      EXPECT_LT(mvcom::crypto::committee_of(d, bits), 1u << bits);
    }
  }
}

TEST(PowTest, CommitteeAssignmentCoversAllCommittees) {
  std::vector<int> seen(1 << 3, 0);
  for (int i = 0; i < 2000; ++i) {
    const Digest d = Sha256::hash("y" + std::to_string(i));
    ++seen[mvcom::crypto::committee_of(d, 3)];
  }
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(PowTest, ModelSolveLatencyMeanMatchesPaper) {
  // The paper's committee-formation model: Exp with mean 600 s.
  Rng rng(61);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += mvcom::crypto::model_solve_latency(rng, SimTime(600.0), 1.0)
               .seconds();
  }
  EXPECT_NEAR(sum / n, 600.0, 10.0);
}

TEST(PowTest, FasterNodesSolveSooner) {
  Rng rng(67);
  double slow = 0.0;
  double fast = 0.0;
  for (int i = 0; i < 20000; ++i) {
    slow += mvcom::crypto::model_solve_latency(rng, SimTime(600.0), 0.5)
                .seconds();
    fast += mvcom::crypto::model_solve_latency(rng, SimTime(600.0), 2.0)
                .seconds();
  }
  EXPECT_GT(slow, 3.0 * fast);  // 4x rate ratio, wide margin
}

}  // namespace
