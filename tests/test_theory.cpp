// Tests for the closed-form theory (Theorem 1, Remark 1/2) and the exact
// Markov-chain analysis (Lemma 3 via Gillespie, Lemma 4, Theorem 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/markov.hpp"
#include "analysis/theory.hpp"
#include "common/rng.hpp"

namespace {

using mvcom::analysis::enumerate_full_space;
using mvcom::analysis::enumerate_space;
using mvcom::analysis::failure_perturbation;
using mvcom::analysis::log_sum_exp_optimality_loss;
using mvcom::analysis::mixing_time_bounds;
using mvcom::analysis::simulate_occupancy;
using mvcom::analysis::stationary_distribution;
using mvcom::analysis::total_variation;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;

EpochInstance small_instance(std::uint64_t seed = 1, std::size_t n = 8) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  for (std::size_t i = 0; i < n; ++i) {
    // Small utilities keep exp(βU) well-conditioned for exact comparison.
    committees.push_back({static_cast<std::uint32_t>(i), 2 + rng.below(6),
                          rng.uniform(0.0, 4.0)});
  }
  return EpochInstance(std::move(committees), 1.0, 10'000, 0);
}

// --- Theorem 1 ---------------------------------------------------------------

TEST(TheoremOneTest, LowerBoundBelowUpperBound) {
  for (const std::size_t I : {10u, 50u, 200u}) {
    const auto bounds = mixing_time_bounds(I, 2.0, 0.0, 100.0, 0.01);
    EXPECT_LT(bounds.log_lower, bounds.log_upper) << "I=" << I;
  }
}

TEST(TheoremOneTest, UpperBoundGrowsWithCommittees) {
  // Remark 2: the upper bound scales as O(4^|I|).
  const auto small = mixing_time_bounds(10, 2.0, 0.0, 50.0, 0.01);
  const auto large = mixing_time_bounds(20, 2.0, 0.0, 50.0, 0.01);
  EXPECT_GT(large.log_upper, small.log_upper + 9.0 * std::log(4.0));
}

TEST(TheoremOneTest, UpperBoundGrowsWithBeta) {
  // Remark 2: β → ∞ makes convergence arbitrarily slow.
  const auto lo = mixing_time_bounds(20, 1.0, 0.0, 50.0, 0.01);
  const auto hi = mixing_time_bounds(20, 4.0, 0.0, 50.0, 0.01);
  EXPECT_GT(hi.log_upper, lo.log_upper);
}

TEST(TheoremOneTest, TighterEpsilonCostsMoreTime) {
  const auto loose = mixing_time_bounds(20, 2.0, 0.0, 50.0, 0.1);
  const auto tight = mixing_time_bounds(20, 2.0, 0.0, 50.0, 0.001);
  EXPECT_GT(tight.log_upper, loose.log_upper);
  EXPECT_GT(tight.log_lower, loose.log_lower);
}

TEST(RemarkOneTest, OptimalityLossFormula) {
  // (1/β) log|F| with |F| = 2^|I|.
  EXPECT_NEAR(log_sum_exp_optimality_loss(10, 2.0), 10.0 * std::log(2.0) / 2.0,
              1e-12);
  // β → ∞ drives the loss to 0.
  EXPECT_LT(log_sum_exp_optimality_loss(10, 100.0),
            log_sum_exp_optimality_loss(10, 1.0));
}

// --- state-space enumeration and Eq. (6) -------------------------------------

TEST(MarkovSpaceTest, EnumerationCountsBinomials) {
  const EpochInstance inst = small_instance(2, 6);
  // Capacity is slack, so every cardinality-n subset is feasible: C(6,n).
  EXPECT_EQ(enumerate_space(inst, 0).states.size(), 1u);
  EXPECT_EQ(enumerate_space(inst, 1).states.size(), 6u);
  EXPECT_EQ(enumerate_space(inst, 2).states.size(), 15u);
  EXPECT_EQ(enumerate_space(inst, 3).states.size(), 20u);
  EXPECT_EQ(enumerate_full_space(inst).states.size(), 64u);
}

TEST(MarkovSpaceTest, CapacityPrunesStates) {
  std::vector<Committee> committees{{0, 5, 1.0}, {1, 5, 2.0}, {2, 5, 3.0}};
  const EpochInstance inst(committees, 1.0, 11, 0);  // any two fit, three don't
  EXPECT_EQ(enumerate_space(inst, 2).states.size(), 3u);
  EXPECT_EQ(enumerate_space(inst, 3).states.size(), 0u);
}

TEST(StationaryDistributionTest, SumsToOneAndOrdersByUtility) {
  const EpochInstance inst = small_instance(3, 8);
  const auto space = enumerate_space(inst, 4);
  const auto p = stationary_distribution(space, 2.0);
  double sum = 0.0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Eq. (6): higher-utility states carry more probability.
  for (std::size_t a = 0; a < space.states.size(); ++a) {
    for (std::size_t b = a + 1; b < space.states.size(); ++b) {
      if (space.utilities[a] > space.utilities[b] + 1e-9) {
        EXPECT_GT(p[a], p[b]);
      }
    }
  }
}

TEST(DetailedBalanceTest, GillespieOccupancyMatchesEq6) {
  // Lemma 3's consequence: the CTMC with Eq.-(7) rates is time-reversible
  // with stationary distribution Eq. (6). Simulate and compare in TV.
  const EpochInstance inst = small_instance(4, 7);
  const auto space = enumerate_space(inst, 3);
  const auto p_star = stationary_distribution(space, 1.0);
  mvcom::common::Rng rng(5);
  const auto occupancy = simulate_occupancy(space, 1.0, 0.0, 400'000, rng);
  EXPECT_LT(total_variation(p_star, occupancy), 0.02);
}

TEST(DetailedBalanceTest, HoldsAcrossBetas) {
  const EpochInstance inst = small_instance(6, 6);
  const auto space = enumerate_space(inst, 3);
  for (const double beta : {0.5, 1.0, 2.0}) {
    const auto p_star = stationary_distribution(space, beta);
    mvcom::common::Rng rng(7);
    const auto occupancy =
        simulate_occupancy(space, beta, 0.0, 300'000, rng);
    EXPECT_LT(total_variation(p_star, occupancy), 0.03) << "beta " << beta;
  }
}

TEST(RemarkOneTest, GibbsExpectationWithinOptimalityLossBound) {
  // Remark 1: time-sharing solutions per Eq. (6) loses at most (1/β)·log|F|
  // against the optimum — i.e. E_{p*}[U] >= U_max − (1/β)·log|F|. Verified
  // exactly on enumerated spaces across β.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const EpochInstance inst = small_instance(seed, 8);
    const auto space = enumerate_full_space(inst);
    const double u_max =
        *std::max_element(space.utilities.begin(), space.utilities.end());
    for (const double beta : {0.5, 1.0, 2.0, 8.0}) {
      const auto p = stationary_distribution(space, beta);
      double expected = 0.0;
      for (std::size_t s = 0; s < p.size(); ++s) {
        expected += p[s] * space.utilities[s];
      }
      const double loss = log_sum_exp_optimality_loss(8, beta);
      EXPECT_GE(expected, u_max - loss - 1e-9)
          << "seed " << seed << " beta " << beta;
      EXPECT_LE(expected, u_max + 1e-9);
    }
  }
}

TEST(RemarkOneTest, LargerBetaConcentratesOnTheOptimum) {
  const EpochInstance inst = small_instance(5, 8);
  const auto space = enumerate_full_space(inst);
  const double u_max =
      *std::max_element(space.utilities.begin(), space.utilities.end());
  double prev_expected = -1e300;
  for (const double beta : {0.25, 1.0, 4.0, 16.0}) {
    const auto p = stationary_distribution(space, beta);
    double expected = 0.0;
    for (std::size_t s = 0; s < p.size(); ++s) {
      expected += p[s] * space.utilities[s];
    }
    EXPECT_GE(expected, prev_expected - 1e-9) << "beta " << beta;
    prev_expected = expected;
  }
  EXPECT_NEAR(prev_expected, u_max, 0.05 * std::abs(u_max) + 1.0);
}

// --- Lemma 4 / Theorem 2 ------------------------------------------------------

TEST(FailureTest, TrimmedFractionIsExactlyHalf) {
  // |F\G| / |F| = 2^{|I|-1} / 2^|I| = 1/2 (Lemma 4's counting step).
  const EpochInstance inst = small_instance(8, 8);
  const auto space = enumerate_full_space(inst);
  const auto perturbation = failure_perturbation(space, 2.0, 3);
  EXPECT_DOUBLE_EQ(perturbation.trimmed_fraction, 0.5);
}

TEST(FailureTest, TvDistanceBoundedByHalf) {
  // Lemma 4: d_TV(q*, q̃) <= 1/2, for every failed committee.
  const EpochInstance inst = small_instance(9, 8);
  const auto space = enumerate_full_space(inst);
  for (std::uint32_t failed = 0; failed < 8; ++failed) {
    const auto perturbation = failure_perturbation(space, 2.0, failed);
    EXPECT_LE(perturbation.tv_distance, 0.5 + 1e-12) << "failed " << failed;
    EXPECT_GE(perturbation.tv_distance, 0.0);
  }
}

TEST(FailureTest, UtilityShiftBoundedByTheorem2) {
  // Theorem 2: |q*uᵀ − q̃uᵀ| <= max_{g∈G} U_g.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EpochInstance inst = small_instance(seed, 8);
    const auto space = enumerate_full_space(inst);
    for (std::uint32_t failed = 0; failed < 8; failed += 3) {
      const auto p = failure_perturbation(space, 2.0, failed);
      EXPECT_LE(p.utility_shift,
                mvcom::analysis::failure_perturbation_bound(
                    p.max_trimmed_utility) +
                    1e-9)
          << "seed " << seed << " failed " << failed;
    }
  }
}

TEST(FailureTest, LargeBetaShrinksPerturbationWhenOptimumSurvives) {
  // When the best solution avoids the failed committee, large β concentrates
  // both q* and q̃ on it, so the perturbation vanishes. With deadline 10,
  // gains are 91, −3, −1, −9: the optimum {0} excludes committee 3.
  std::vector<Committee> committees{
      {0, 100, 1.0}, {1, 5, 2.0}, {2, 6, 3.0}, {3, 1, 0.0}};
  const EpochInstance inst(committees, 1.0, 1000, 0, 10.0);
  const auto space = enumerate_full_space(inst);
  const auto weak = failure_perturbation(space, 0.05, 3);
  const auto strong = failure_perturbation(space, 2.0, 3);
  EXPECT_LT(strong.tv_distance, weak.tv_distance);
}

}  // namespace
