// Tests for the DDL policy family (§III-A / Alg. 1 line 29).

#include "mvcom/ddl_policy.hpp"

#include <gtest/gtest.h>

namespace {

using mvcom::core::FixedDdl;
using mvcom::core::make_instance_with_ddl;
using mvcom::core::MaxLatencyDdl;
using mvcom::core::PercentileDdl;
using mvcom::txn::ShardReport;

std::vector<ShardReport> reports_with_latencies(
    std::initializer_list<double> latencies) {
  std::vector<ShardReport> reports;
  std::uint32_t id = 0;
  for (const double l : latencies) {
    ShardReport r;
    r.committee_id = id++;
    r.tx_count = 100 + 10 * id;
    r.formation_latency = l;
    r.consensus_latency = 0.0;
    reports.push_back(r);
  }
  return reports;
}

TEST(MaxLatencyDdlTest, AdmitsEveryoneAtTheMax) {
  const auto reports = reports_with_latencies({800, 900, 1200, 1000});
  MaxLatencyDdl policy;
  const auto admission = policy.admit(reports);
  EXPECT_DOUBLE_EQ(admission.deadline, 1200.0);
  EXPECT_EQ(admission.admitted.size(), 4u);
  EXPECT_EQ(admission.stragglers, 0u);
}

TEST(PercentileDdlTest, DropsTheSlowestTail) {
  // 10 committees, latencies 100..1000; the 0.8 quantile (linear
  // interpolation) admits the fastest 9... compute: values 100..1000,
  // q=0.8 → position 7.2 → 820. Committees above 820 are stragglers.
  std::vector<double> latencies;
  for (int i = 1; i <= 10; ++i) latencies.push_back(100.0 * i);
  const auto reports = reports_with_latencies(
      {100, 200, 300, 400, 500, 600, 700, 800, 900, 1000});
  PercentileDdl policy(0.8);
  const auto admission = policy.admit(reports);
  EXPECT_NEAR(admission.deadline, 820.0, 1e-9);
  EXPECT_EQ(admission.admitted.size(), 8u);
  EXPECT_EQ(admission.stragglers, 2u);
  for (const auto& r : admission.admitted) {
    EXPECT_LE(r.two_phase_latency(), admission.deadline);
  }
}

TEST(PercentileDdlTest, FullQuantileEqualsMaxLatency) {
  const auto reports = reports_with_latencies({5, 9, 3, 7});
  PercentileDdl full(1.0);
  MaxLatencyDdl max_policy;
  EXPECT_DOUBLE_EQ(full.deadline(reports), max_policy.deadline(reports));
}

TEST(PercentileDdlTest, RejectsBadQuantiles) {
  EXPECT_THROW(PercentileDdl(0.0), std::invalid_argument);
  EXPECT_THROW(PercentileDdl(1.5), std::invalid_argument);
}

TEST(FixedDdlTest, CutoffIsLiteral) {
  const auto reports = reports_with_latencies({100, 200, 300});
  FixedDdl policy(250.0);
  const auto admission = policy.admit(reports);
  EXPECT_DOUBLE_EQ(admission.deadline, 250.0);
  EXPECT_EQ(admission.admitted.size(), 2u);
  EXPECT_EQ(admission.stragglers, 1u);
}

TEST(DdlPolicyTest, EmptyReportsThrow) {
  MaxLatencyDdl policy;
  EXPECT_THROW(policy.admit({}), std::invalid_argument);
}

TEST(MakeInstanceWithDdlTest, StragglersNeverEnterTheInstance) {
  const auto reports = reports_with_latencies({100, 200, 900, 1000});
  PercentileDdl policy(0.5);
  const auto instance =
      make_instance_with_ddl(reports, policy, 1.5, 10'000, 0);
  ASSERT_TRUE(instance.has_value());
  EXPECT_LT(instance->size(), reports.size());
  for (const auto& c : instance->committees()) {
    EXPECT_LE(c.latency, instance->deadline());
  }
  // The instance deadline is the policy's, not the admitted max.
  EXPECT_DOUBLE_EQ(instance->deadline(), policy.deadline(reports));
}

TEST(MakeInstanceWithDdlTest, NoSurvivorsYieldsNullopt) {
  const auto reports = reports_with_latencies({100, 200});
  FixedDdl policy(50.0);
  EXPECT_FALSE(
      make_instance_with_ddl(reports, policy, 1.5, 10'000, 0).has_value());
}

TEST(MakeInstanceWithDdlTest, TighterDdlShrinksAges) {
  // A tighter deadline leaves fresher shards: cumulative age of the
  // admitted set is smaller under the 0.6-quantile than under max-latency.
  const auto reports = reports_with_latencies(
      {100, 300, 500, 700, 900, 1100, 1300, 1500, 1700, 1900});
  MaxLatencyDdl loose;
  PercentileDdl tight(0.6);
  const auto loose_inst =
      make_instance_with_ddl(reports, loose, 1.5, 100'000, 0);
  const auto tight_inst =
      make_instance_with_ddl(reports, tight, 1.5, 100'000, 0);
  ASSERT_TRUE(loose_inst && tight_inst);
  mvcom::core::Selection all_loose(loose_inst->size(), 1);
  mvcom::core::Selection all_tight(tight_inst->size(), 1);
  EXPECT_LT(tight_inst->cumulative_age(all_tight),
            loose_inst->cumulative_age(all_loose));
}

}  // namespace
