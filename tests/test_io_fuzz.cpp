// Fuzz-style round-trip tests for the two on-disk formats the pipeline
// depends on: RFC-4180 CSV (common/csv) and the block-trace schema
// (txn/trace_io). Adversarial inputs — embedded quotes, separators and
// newlines inside fields, truncated files at every byte boundary, zero-TX
// blocks, malformed numerics — must either round-trip losslessly or fail
// with the documented exception types and a useful message; never crash,
// never misparse silently.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "txn/trace_generator.hpp"
#include "txn/trace_io.hpp"

namespace {

using mvcom::common::CsvRow;
using mvcom::common::CsvWriter;
using mvcom::common::Rng;
using mvcom::txn::BlockRecord;
using mvcom::txn::Trace;

std::filesystem::path tmp_path(const std::string& name) {
  return std::filesystem::path(testing::TempDir()) / name;
}

/// Field alphabet weighted toward the characters that break naive CSV
/// implementations: separators, quotes, CR/LF, and the empty string.
std::string adversarial_field(Rng& rng) {
  static constexpr const char* kAtoms[] = {
      ",",  "\"", "\n", "\r\n", "\"\"", "a", "xyz", " ", "\t",
      ";",  "0",  "-1", "\",\"", "end\"", "\"start", "",
  };
  std::string field;
  const std::size_t atoms = rng.below(6);
  for (std::size_t i = 0; i < atoms; ++i) {
    field += kAtoms[rng.below(sizeof kAtoms / sizeof kAtoms[0])];
  }
  return field;
}

TEST(CsvFuzzTest, AdversarialFieldsRoundTripLosslessly) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const std::size_t cols = 1 + rng.below(5);
    const std::size_t rows = 1 + rng.below(8);
    std::vector<CsvRow> expected;
    const auto path = tmp_path("fuzz_roundtrip.csv");
    {
      CsvWriter writer(path);
      for (std::size_t r = 0; r < rows; ++r) {
        CsvRow row;
        for (std::size_t c = 0; c < cols; ++c) {
          row.push_back(adversarial_field(rng));
        }
        // A lone empty field renders as a blank line, which the reader
        // documentedly skips — the one genuinely ambiguous encoding.
        if (cols == 1 && row[0].empty()) row[0] = "x";
        writer.write_row(row);
        expected.push_back(std::move(row));
      }
    }
    const auto file = mvcom::common::read_csv(path, /*expect_header=*/false);
    ASSERT_EQ(file.rows.size(), expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      EXPECT_EQ(file.rows[r], expected[r]) << "row " << r;
    }
  }
}

TEST(CsvFuzzTest, ParserEitherParsesOrThrowsTheDocumentedType) {
  // Random byte soup into parse_csv_line: the contract is "fields or
  // std::invalid_argument" — anything else (crash, wrong exception) fails.
  // When it does parse, re-escaping the fields must reproduce them exactly
  // (no silent data loss on weird-but-legal lines).
  static constexpr char kBytes[] = ",\"\n\r ab1;\\";
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    std::string line;
    const std::size_t len = rng.below(24);
    for (std::size_t i = 0; i < len; ++i) {
      line += kBytes[rng.below(sizeof kBytes - 1)];
    }
    try {
      const CsvRow fields = mvcom::common::parse_csv_line(line);
      std::string rebuilt;
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) rebuilt += ',';
        rebuilt += mvcom::common::escape_csv_field(fields[i]);
      }
      EXPECT_EQ(mvcom::common::parse_csv_line(rebuilt), fields)
          << "canonicalized line does not reparse to the same fields";
    } catch (const std::invalid_argument&) {
      // Documented rejection (malformed quoting / embedded newline) — fine.
    }
  }
}

TEST(CsvFuzzTest, InconsistentArityIsRejectedNotPadded) {
  const auto path = tmp_path("fuzz_arity.csv");
  std::ofstream(path) << "a,b,c\n1,2,3\n4,5\n";
  EXPECT_THROW(mvcom::common::read_csv(path, /*expect_header=*/true),
               std::runtime_error);
}

TEST(CsvFuzzTest, UnterminatedQuoteAtEofThrows) {
  const auto path = tmp_path("fuzz_unterminated.csv");
  std::ofstream(path) << "a,b\n\"never closed,2\n";
  EXPECT_THROW(mvcom::common::read_csv(path, /*expect_header=*/true),
               std::invalid_argument);
}

/// A handcrafted trace exercising the schema's corners: a zero-TX block, a
/// hash field full of CSV metacharacters, and integral btimes (the writer
/// renders btime via std::to_string, so only values that survive its fixed
/// precision round-trip bit-exactly).
Trace corner_trace() {
  Trace trace;
  trace.blocks.push_back({1, "aa,bb", 1000.0, 5});
  trace.blocks.push_back({2, "quote\"inside", 1600.0, 0});  // zero-TX shard
  trace.blocks.push_back({3, "multi\nline", 2200.5, 123456789});
  trace.blocks.push_back({4, "", 2800.25, 1});
  return trace;
}

TEST(TraceFuzzTest, CornerTraceRoundTripsExactly) {
  const Trace trace = corner_trace();
  const auto path = tmp_path("fuzz_trace.csv");
  mvcom::txn::write_trace_csv(trace, path);
  const Trace loaded = mvcom::txn::load_trace_csv(path);
  ASSERT_EQ(loaded.blocks.size(), trace.blocks.size());
  for (std::size_t i = 0; i < trace.blocks.size(); ++i) {
    EXPECT_EQ(loaded.blocks[i].block_id, trace.blocks[i].block_id);
    EXPECT_EQ(loaded.blocks[i].bhash, trace.blocks[i].bhash);
    EXPECT_DOUBLE_EQ(loaded.blocks[i].btime, trace.blocks[i].btime);
    EXPECT_EQ(loaded.blocks[i].tx_count, trace.blocks[i].tx_count);
  }
}

TEST(TraceFuzzTest, TruncationAtEveryByteFailsCleanlyOrLoadsAPrefix) {
  // Write a real generated trace, then re-load every byte-prefix of the
  // file. Each prefix must either load (as ≤ the original block count —
  // truncation at a record boundary is indistinguishable from a shorter
  // file) or throw one of the two documented exception types. Any other
  // outcome (other exception, crash, *more* blocks) is a parser bug.
  Rng rng(7);
  mvcom::txn::TraceGeneratorConfig config;
  config.num_blocks = 12;
  config.target_total_txs = 4000;
  const Trace trace = mvcom::txn::generate_trace(config, rng);
  const auto path = tmp_path("fuzz_trace_full.csv");
  mvcom::txn::write_trace_csv(trace, path);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 100u);

  const auto prefix_path = tmp_path("fuzz_trace_prefix.csv");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    std::ofstream(prefix_path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, cut);
    try {
      const Trace loaded = mvcom::txn::load_trace_csv(prefix_path);
      EXPECT_LE(loaded.blocks.size(), trace.blocks.size());
    } catch (const std::runtime_error&) {
      // Bad header / arity / numeric field — the documented failure mode.
    } catch (const std::invalid_argument&) {
      // Truncation inside a quoted field — also documented.
    }
  }
}

TEST(TraceFuzzTest, MalformedNumericFieldsReportTheField) {
  const struct {
    const char* row;
    const char* expect_in_message;
  } kCases[] = {
      {"1,aa,100.0,12x", "txs"},
      {"1,aa,100.0,-5", "txs"},
      {"1,aa,not-a-time,12", "btime"},
      {"one,aa,100.0,12", "blockID"},
      {"1,aa,100.0,", "txs"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.row);
    const auto path = tmp_path("fuzz_trace_bad.csv");
    std::ofstream(path) << "blockID,bhash,btime,txs\n" << c.row << "\n";
    try {
      (void)mvcom::txn::load_trace_csv(path);
      FAIL() << "malformed row was accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << "error message '" << e.what() << "' does not name the field";
    }
  }
}

TEST(AccountTxFuzzTest, CornerRecordsRoundTripExactly) {
  // Schema corners: empty read/write sets, single-element sets, max-range
  // account ids, and a zero timestamp.
  std::vector<mvcom::txn::AccountTx> txs;
  txs.push_back({0, 0.0, 0, {}, {}});
  txs.push_back({18446744073709551615ULL, 1451606400.5, 4294967295U,
                 {1}, {4294967294U}});
  txs.push_back({5, 2000.25, 17, {3, 1, 2}, {}});
  const auto path = tmp_path("fuzz_accounts.csv");
  mvcom::txn::write_account_txs_csv(txs, path);
  const auto loaded = mvcom::txn::load_account_txs_csv(path);
  ASSERT_EQ(loaded.size(), txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(loaded[i].tx_id, txs[i].tx_id);
    EXPECT_EQ(loaded[i].sender, txs[i].sender);
    EXPECT_EQ(loaded[i].reads, txs[i].reads);
    EXPECT_EQ(loaded[i].writes, txs[i].writes);
    EXPECT_DOUBLE_EQ(loaded[i].timestamp, txs[i].timestamp);
  }
}

TEST(AccountTxFuzzTest, MalformedRecordsReportTheField) {
  const struct {
    const char* row;
    const char* expect_in_message;
  } kCases[] = {
      {"one,10.0,3,1;2,", "txID"},
      {"1,not-a-time,3,1;2,", "ts"},
      {"1,10.0,-3,1;2,", "sender"},
      {"1,10.0,4294967296,1;2,", "sender"},  // > uint32 max
      {"1,10.0,3,1;;2,", "writes"},          // empty item inside the list
      {"1,10.0,3,1;x,", "writes"},
      {"1,10.0,3,,5;y", "reads"},
      {"1,10.0,3,18446744073709551616,", "writes"},  // > uint64 max
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.row);
    const auto path = tmp_path("fuzz_accounts_bad.csv");
    std::ofstream(path) << "txID,ts,sender,writes,reads\n" << c.row << "\n";
    try {
      (void)mvcom::txn::load_account_txs_csv(path);
      FAIL() << "malformed row was accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << "error message '" << e.what() << "' does not name the field";
    }
  }
}

TEST(AccountTxFuzzTest, TruncationAtEveryByteFailsCleanlyOrLoadsAPrefix) {
  mvcom::txn::AccountModelConfig config;
  config.num_accounts = 200;
  config.num_shards = 4;
  config.txs_per_epoch = 10;
  const mvcom::txn::AccountTxGenerator gen(config);
  const auto epoch = gen.epoch_keyed(7, 0);
  const auto path = tmp_path("fuzz_accounts_full.csv");
  mvcom::txn::write_account_txs_csv(epoch.txs, path);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 50u);

  const auto prefix_path = tmp_path("fuzz_accounts_prefix.csv");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    std::ofstream(prefix_path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, cut);
    try {
      const auto loaded = mvcom::txn::load_account_txs_csv(prefix_path);
      EXPECT_LE(loaded.size(), epoch.txs.size());
    } catch (const std::runtime_error&) {
      // Bad header / arity / numeric field — documented.
    } catch (const std::invalid_argument&) {
      // Truncation inside a quoted field — documented.
    }
  }
}

TEST(AccountTxFuzzTest, WrongHeaderIsRejected) {
  const auto path = tmp_path("fuzz_accounts_header.csv");
  std::ofstream(path) << "id,time,from,w,r\n1,10.0,3,1;2,\n";
  EXPECT_THROW(mvcom::txn::load_account_txs_csv(path), std::runtime_error);
}

TEST(TraceFuzzTest, WrongHeaderIsRejected) {
  const auto path = tmp_path("fuzz_trace_header.csv");
  std::ofstream(path) << "id,hash,time,count\n1,aa,100.0,12\n";
  EXPECT_THROW(mvcom::txn::load_trace_csv(path), std::runtime_error);
}

TEST(TraceFuzzTest, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(
      mvcom::txn::load_trace_csv(tmp_path("does_not_exist_anywhere.csv")),
      std::runtime_error);
}

}  // namespace
