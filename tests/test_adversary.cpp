// Tests for the strategic-adversary layer: per-strategy plan shape and
// determinism, the (seed, observed history) purity contract, campaign
// replay digests, cross-epoch supervision carry, the risk-adaptive-vs-static
// dominance regime under targeted corruption, and the obs events digest the
// CI adversarial smoke uses as its bit-identical-replay witness.

#include "mvcom/adversary/adversary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "mvcom/adversary/campaign.hpp"
#include "obs/trace.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

namespace {

using mvcom::core::Adversary;
using mvcom::core::AdversaryConfig;
using mvcom::core::AdversaryStrategy;
using mvcom::core::CampaignConfig;
using mvcom::core::CampaignResult;
using mvcom::core::ChaosCommittee;
using mvcom::core::chaos_committees_from_reports;
using mvcom::core::EpochObservation;
using mvcom::core::FaultEvent;
using mvcom::core::FaultKind;
using mvcom::core::FaultPlan;
using mvcom::core::kAllAdversaryStrategies;
using mvcom::core::run_adversarial_campaign;

mvcom::txn::Trace test_trace(std::uint64_t seed = 8) {
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 64;
  tc.target_total_txs = 64'000;
  mvcom::common::Rng rng(seed);
  return mvcom::txn::generate_trace(tc, rng);
}

std::vector<ChaosCommittee> test_committees(const mvcom::txn::Trace& trace,
                                            std::size_t n) {
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = n;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  return chaos_committees_from_reports(gen.epoch_keyed(3, 0).reports);
}

/// Mirrors the CLI / bench campaign parameterization (20 committees,
/// Ĉ = 725·|I|, full-membership admission window).
CampaignConfig campaign_config(AdversaryStrategy strategy, bool risk_adaptive,
                               std::size_t epochs) {
  CampaignConfig config;
  config.adversary.strategy = strategy;
  config.adversary.budget = 0.35;
  config.committees = 20;
  config.epochs = epochs;
  config.reserve = strategy == AdversaryStrategy::kChurnStorm ? 20u : 0u;
  auto& sched = config.chaos.supervisor.scheduler;
  sched.alpha = 1.5;
  sched.capacity = 725 * 20;
  sched.expected_committees = 20 + config.reserve;
  sched.n_max_fraction = 1.0;
  if (config.reserve > 0) {
    sched.n_min_fraction =
        0.5 * 20.0 / static_cast<double>(20 + config.reserve);
  }
  config.chaos.supervisor.risk.enabled = risk_adaptive;
  config.chaos.supervisor.risk.escalation_step = 1.2;
  config.chaos.supervisor.risk.boost_cap = 8;
  return config;
}

bool plans_equal(const FaultPlan& a, const FaultPlan& b) {
  if (a.events.size() != b.events.size()) return false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const FaultEvent& x = a.events[i];
    const FaultEvent& y = b.events[i];
    if (x.kind != y.kind || x.victim != y.victim ||
        x.committee_id != y.committee_id || x.at_seconds != y.at_seconds ||
        x.duration_seconds != y.duration_seconds ||
        x.magnitude != y.magnitude) {
      return false;
    }
  }
  return true;
}

TEST(AdversaryStrategyTest, ParseRoundTripsEveryStrategy) {
  for (const AdversaryStrategy s : kAllAdversaryStrategies) {
    const auto parsed = mvcom::core::parse_adversary_strategy(
        mvcom::core::to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(mvcom::core::parse_adversary_strategy("mallory").has_value());
  EXPECT_FALSE(mvcom::core::parse_adversary_strategy("").has_value());
}

TEST(AdversaryTest, PlansArePureFunctionsOfSeedEpochAndHistory) {
  const auto trace = test_trace();
  const auto committees = test_committees(trace, 12);
  EpochObservation obs;
  obs.permitted_ids = {0, 3, 5, 7};
  for (const ChaosCommittee& c : committees) {
    obs.final_reports.push_back(
        {c.submission.committee_id, c.submission.claimed_tx_count, 0.0, 0.0});
  }
  for (const AdversaryStrategy s : kAllAdversaryStrategies) {
    AdversaryConfig config;
    config.strategy = s;
    const Adversary a(config, 99);
    const Adversary b(config, 99);
    // Same (seed, epoch, history) — identical plans, even across instances.
    EXPECT_TRUE(plans_equal(a.plan_epoch(4, committees, 6, obs),
                            b.plan_epoch(4, committees, 6, obs)))
        << mvcom::core::to_string(s);
    // Calls at other epochs must not perturb a replayed epoch (stateless).
    (void)a.plan_epoch(0, committees, 6, std::nullopt);
    EXPECT_TRUE(plans_equal(a.plan_epoch(4, committees, 6, obs),
                            b.plan_epoch(4, committees, 6, obs)))
        << mvcom::core::to_string(s);
    const Adversary other(config, 100);
    EXPECT_FALSE(plans_equal(a.plan_epoch(4, committees, 6, obs),
                             other.plan_epoch(4, committees, 6, obs)))
        << mvcom::core::to_string(s);
  }
}

TEST(AdversaryTest, TargetedCorruptionForgesTheObservedPicks) {
  const auto trace = test_trace();
  const auto committees = test_committees(trace, 12);
  EpochObservation obs;
  obs.permitted_ids = {1, 4, 6, 8, 9};
  obs.banned_ids = {4};  // dead target: no point striking it
  for (const ChaosCommittee& c : committees) {
    obs.final_reports.push_back(
        {c.submission.committee_id, c.submission.claimed_tx_count, 0.0, 0.0});
  }
  AdversaryConfig config;
  config.strategy = AdversaryStrategy::kTargetedCorruption;
  config.budget = 0.25;  // 3 of 12
  const Adversary adversary(config, 5);
  const FaultPlan plan = adversary.plan_epoch(1, committees, 0, obs);
  ASSERT_EQ(plan.events.size(), 3u);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.kind, FaultKind::kForgeSubmission);
    EXPECT_EQ(e.victim, FaultEvent::Victim::kById);
    EXPECT_DOUBLE_EQ(e.magnitude, config.inflation);
    // Victims come from the realized picks, never the banned one.
    EXPECT_TRUE(std::find(obs.permitted_ids.begin(), obs.permitted_ids.end(),
                          e.committee_id) != obs.permitted_ids.end());
    EXPECT_NE(e.committee_id, 4u);
    EXPECT_GE(e.at_seconds, 0.3 * config.horizon_seconds);
    EXPECT_LE(e.at_seconds, 0.9 * config.horizon_seconds);
  }
}

TEST(AdversaryTest, ColludingCoalitionFilesEarlyAndPrefersUnpicked) {
  const auto trace = test_trace();
  const auto committees = test_committees(trace, 12);
  EpochObservation obs;
  obs.permitted_ids = {0, 1, 2, 3, 4, 5, 6, 7};  // losers: 8..11
  for (const ChaosCommittee& c : committees) {
    obs.final_reports.push_back(
        {c.submission.committee_id, c.submission.claimed_tx_count, 0.0, 0.0});
  }
  AdversaryConfig config;
  config.strategy = AdversaryStrategy::kColludingMisreport;
  config.budget = 0.3;  // 4 of 12 — exactly the unpicked committees
  const Adversary adversary(config, 5);
  const FaultPlan plan = adversary.plan_epoch(2, committees, 0, obs);
  ASSERT_EQ(plan.events.size(), 4u);
  std::set<std::uint32_t> victims;
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.kind, FaultKind::kForgeSubmission);
    // The coalition files before honest reports would have gone out.
    EXPECT_LE(e.at_seconds, 0.04 * config.horizon_seconds);
    victims.insert(e.committee_id);
  }
  EXPECT_EQ(victims, (std::set<std::uint32_t>{8, 9, 10, 11}));
}

TEST(AdversaryTest, ChurnStormRespectsReserveAndUsesLiveRankLeaves) {
  const auto trace = test_trace();
  const auto committees = test_committees(trace, 12);
  AdversaryConfig config;
  config.strategy = AdversaryStrategy::kChurnStorm;
  config.budget = 1.0;
  config.churn_multiplier = 10.0;
  const Adversary adversary(config, 21);
  const std::size_t reserve = 5;
  const FaultPlan plan =
      adversary.plan_epoch(0, committees, reserve, std::nullopt);
  std::size_t joins = 0, leaves = 0;
  double last_at = 0.0;
  for (const FaultEvent& e : plan.events) {
    EXPECT_GE(e.at_seconds, last_at);  // schedule is time-sorted
    last_at = e.at_seconds;
    if (e.kind == FaultKind::kJoin) {
      EXPECT_LT(e.committee_id, reserve);  // joins index the reserve pool
      ++joins;
    } else {
      ASSERT_EQ(e.kind, FaultKind::kLeave);
      EXPECT_EQ(e.victim, FaultEvent::Victim::kByLiveRank);
      ++leaves;
    }
  }
  // 10× Fig. 14 rates, but joins are capped by the reserve.
  EXPECT_EQ(joins, reserve);
  EXPECT_GE(leaves, 1u);
}

TEST(AdversaryCampaignTest, ReplayReproducesDecisionDigestBitExactly) {
  const auto trace = test_trace();
  for (const AdversaryStrategy s : kAllAdversaryStrategies) {
    const auto config = campaign_config(s, true, 2);
    const CampaignResult a = run_adversarial_campaign(trace, config, 11);
    const CampaignResult b = run_adversarial_campaign(trace, config, 11);
    EXPECT_EQ(a.decision_digest, b.decision_digest)
        << mvcom::core::to_string(s);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
      EXPECT_EQ(a.epochs[e].honest_permitted_txs,
                b.epochs[e].honest_permitted_txs);
      EXPECT_DOUBLE_EQ(a.epochs[e].utility, b.epochs[e].utility);
    }
    const CampaignResult c = run_adversarial_campaign(trace, config, 12);
    EXPECT_NE(a.decision_digest, c.decision_digest)
        << mvcom::core::to_string(s);
  }
}

TEST(AdversaryCampaignTest, SupervisionStateCarriesAcrossEpochs) {
  const auto trace = test_trace();
  const auto config =
      campaign_config(AdversaryStrategy::kTargetedCorruption, true, 3);
  const CampaignResult result = run_adversarial_campaign(trace, config, 7);
  ASSERT_EQ(result.epochs.size(), 3u);
  // Post-delivery forgeries are struck in epoch 0, so carried risk must
  // seed epoch 1's policy before any of its own strikes land...
  EXPECT_GT(result.epochs[0].report.carry_out.risk, 0.0);
  EXPECT_FALSE(result.epochs[0].report.carry_out.entries.empty());
  // ...and the boosted N_min must outlive epoch 0.
  EXPECT_GT(result.epochs[1].report.effective_n_min, 10u);
  EXPECT_GT(result.epochs[1].report.risk_score, 0.0);
  // Strikes escalate monotonically across the carry chain.
  int max_strikes_epoch0 = 0, max_strikes_epoch2 = 0;
  for (const auto& e : result.epochs[0].report.carry_out.entries) {
    max_strikes_epoch0 = std::max(max_strikes_epoch0, e.strikes);
  }
  for (const auto& e : result.epochs[2].report.carry_out.entries) {
    max_strikes_epoch2 = std::max(max_strikes_epoch2, e.strikes);
  }
  EXPECT_GE(max_strikes_epoch2, max_strikes_epoch0);
}

TEST(AdversaryCampaignTest, RiskAdaptiveSizingDominatesStaticUnderTargeting) {
  const auto trace = test_trace(8);  // the bench's exact workload seed
  const auto adaptive = run_adversarial_campaign(
      trace, campaign_config(AdversaryStrategy::kTargetedCorruption, true, 5),
      7);
  const auto fixed = run_adversarial_campaign(
      trace, campaign_config(AdversaryStrategy::kTargetedCorruption, false, 5),
      7);
  std::uint64_t adaptive_honest = 0, static_honest = 0;
  for (const auto& e : adaptive.epochs) adaptive_honest += e.honest_permitted_txs;
  for (const auto& e : fixed.epochs) static_honest += e.honest_permitted_txs;
  // The dominance regime the bench gates on: at equal attack budget the
  // boosted N_min squeezes forged claims out of the capacity knapsack,
  // winning on honest permitted throughput AND safety (raw utility is not
  // comparable — it counts forged claims).
  EXPECT_GT(adaptive_honest, static_honest);
  EXPECT_GT(adaptive.mean_safety, fixed.mean_safety);
  EXPECT_FALSE(adaptive.infeasible_while_feasible);
  EXPECT_FALSE(fixed.infeasible_while_feasible);
}

TEST(AdversaryCampaignTest, LadderNeverInfeasibleWhileFeasibleExists) {
  const auto trace = test_trace();
  for (const AdversaryStrategy s : kAllAdversaryStrategies) {
    const CampaignResult result =
        run_adversarial_campaign(trace, campaign_config(s, true, 3), 19);
    EXPECT_FALSE(result.infeasible_while_feasible)
        << mvcom::core::to_string(s);
  }
}

TEST(ObsEventsDigestTest, WitnessesEventStreamIdentityIgnoringWallClock) {
  using mvcom::obs::TraceEvent;
  TraceEvent a;
  a.category = "fault";
  a.name = "fault/injected";
  a.sim_time_seconds = 12.5;
  a.seq = 1;
  a.args[0] = {"committee_id", 3.0};
  TraceEvent b = a;
  b.wall_time_us = 99999.0;  // wall clock differs between replays
  const std::vector<TraceEvent> run1 = {a};
  const std::vector<TraceEvent> run2 = {b};
  EXPECT_EQ(mvcom::obs::events_digest(run1), mvcom::obs::events_digest(run2));

  TraceEvent c = a;
  c.sim_time_seconds = 12.75;  // any deterministic field difference shows
  const std::vector<TraceEvent> run3 = {c};
  EXPECT_NE(mvcom::obs::events_digest(run1), mvcom::obs::events_digest(run3));

  const std::vector<TraceEvent> empty;
  EXPECT_NE(mvcom::obs::events_digest(run1), mvcom::obs::events_digest(empty));
}

}  // namespace
