// Property-style sweeps for the SE scheduler: determinism, optimality
// envelopes across seeds, constraint boundaries, and dynamics under the
// literal timer-race kernel.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/exhaustive.hpp"
#include "common/rng.hpp"
#include "mvcom/se_scheduler.hpp"

namespace {

using mvcom::baselines::Exhaustive;
using mvcom::core::Committee;
using mvcom::core::EpochInstance;
using mvcom::core::Selection;
using mvcom::core::SeParams;
using mvcom::core::SeScheduler;
using mvcom::core::SeTransition;

EpochInstance random_instance(std::uint64_t seed, std::size_t n,
                              std::size_t n_min, double capacity_fraction) {
  mvcom::common::Rng rng(seed);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Committee c{static_cast<std::uint32_t>(i), 500 + rng.below(1500),
                600.0 + rng.uniform(0.0, 900.0)};
    total += c.txs;
    committees.push_back(c);
  }
  return EpochInstance(std::move(committees), 1.5,
                       static_cast<std::uint64_t>(
                           capacity_fraction * static_cast<double>(total)),
                       n_min);
}

TEST(SePropertyTest, FullRunIsDeterministicPerSeed) {
  const EpochInstance inst = random_instance(1, 14, 3, 0.7);
  SeParams params;
  params.threads = 3;
  params.max_iterations = 800;
  SeScheduler a(inst, params, 99);
  SeScheduler b(inst, params, 99);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.best, rb.best);
  EXPECT_DOUBLE_EQ(ra.utility, rb.utility);
  EXPECT_EQ(ra.utility_trace.size(), rb.utility_trace.size());
}

TEST(SePropertyTest, DifferentSeedsExploreDifferently) {
  const EpochInstance inst = random_instance(2, 14, 3, 0.7);
  SeParams params;
  params.threads = 1;
  params.max_iterations = 50;  // early, before convergence erases history
  params.convergence_window = 60;
  SeScheduler a(inst, params, 1);
  SeScheduler b(inst, params, 2);
  const auto ra = a.run();
  const auto rb = b.run();
  // Traces should differ somewhere (same would mean the seed is ignored).
  EXPECT_NE(ra.utility_trace, rb.utility_trace);
}

// Seed sweep: SE never exceeds the exhaustive optimum and lands within 95%.
class SeSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeSeedSweep, WithinOptimalityEnvelope) {
  const std::uint64_t seed = GetParam();
  const EpochInstance inst = random_instance(seed, 13, 3, 0.65);
  Exhaustive exact;
  const auto truth = exact.solve(inst);
  ASSERT_TRUE(truth.feasible);
  SeParams params;
  params.threads = 4;
  params.max_iterations = 2000;
  SeScheduler scheduler(inst, params, seed * 1000 + 7);
  const auto result = scheduler.run();
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.utility, truth.utility + 1e-6);
  EXPECT_GE(result.utility, 0.95 * truth.utility);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeSeedSweep,
                         ::testing::Values(3, 5, 8, 13, 21, 34, 55, 89));

TEST(SePropertyTest, ExactCapacityBoundaryIsUsable) {
  // Capacity exactly equal to the total: the full set is feasible and (all
  // gains positive with a tiny deadline) optimal.
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    committees.push_back({i, 100, 10.0 + i});
    total += 100;
  }
  const EpochInstance inst(committees, 10.0, total, 0);
  SeParams params;
  params.threads = 2;
  SeScheduler scheduler(inst, params, 3);
  const auto result = scheduler.run();
  ASSERT_TRUE(result.feasible);
  for (const auto bit : result.best) EXPECT_EQ(bit, 1);
}

TEST(SePropertyTest, NminEqualToSizeForcesFullSet) {
  std::vector<Committee> committees;
  for (std::uint32_t i = 0; i < 6; ++i) {
    committees.push_back({i, 100, 10.0 + i});
  }
  const EpochInstance inst(committees, 1.0, 10'000, 6);
  SeParams params;
  params.threads = 2;
  SeScheduler scheduler(inst, params, 4);
  const auto result = scheduler.run();
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(inst.stats(result.best).chosen, 6u);
}

TEST(SePropertyTest, SingleCommitteeInstance) {
  const EpochInstance inst({{7, 500, 100.0}}, 2.0, 1000, 1);
  SeParams params;
  SeScheduler scheduler(inst, params, 5);
  const auto result = scheduler.run();
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.best, Selection{1});
  EXPECT_DOUBLE_EQ(result.utility, 1000.0);  // α·s − 0 age (own deadline)
}

TEST(SePropertyTest, TimerRaceHandlesDynamicsToo) {
  const EpochInstance inst = random_instance(6, 10, 2, 0.7);
  SeParams params;
  params.threads = 2;
  params.transition = SeTransition::kTimerRace;
  SeScheduler scheduler(inst, params, 6);
  for (int i = 0; i < 500; ++i) scheduler.step();
  scheduler.add_committee({50, 900, 1000.0});
  scheduler.remove_committee(0);
  for (int i = 0; i < 500; ++i) scheduler.step();
  const Selection x = scheduler.current_selection();
  ASSERT_FALSE(x.empty());
  EXPECT_TRUE(scheduler.instance().feasible(x));
}

TEST(SePropertyTest, ConvergenceWindowStopsEarly) {
  const EpochInstance inst = random_instance(7, 10, 2, 0.9);
  SeParams params;
  params.threads = 2;
  params.max_iterations = 50'000;
  params.convergence_window = 200;
  SeScheduler scheduler(inst, params, 8);
  const auto result = scheduler.run();
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 50'000u);
}

TEST(SePropertyTest, AlphaScalingShiftsSelectionTowardThroughput) {
  // Larger α makes the scheduler keep bigger (possibly older) shards: the
  // permitted TX count is non-decreasing in α on the same instance data.
  mvcom::common::Rng rng(9);
  std::vector<Committee> committees;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    Committee c{i, 500 + rng.below(1500), 600.0 + rng.uniform(0.0, 900.0)};
    total += c.txs;
    committees.push_back(c);
  }
  std::uint64_t prev_txs = 0;
  for (const double alpha : {0.3, 1.5, 10.0}) {
    const EpochInstance inst(committees, alpha, (total * 7) / 10, 0);
    SeParams params;
    params.threads = 4;
    params.max_iterations = 2500;
    SeScheduler scheduler(inst, params, 10);
    const auto result = scheduler.run();
    ASSERT_TRUE(result.feasible);
    const std::uint64_t txs = inst.permitted_txs(result.best);
    EXPECT_GE(txs + total / 100, prev_txs) << "alpha " << alpha;  // 1% slack
    prev_txs = txs;
  }
}

}  // namespace
