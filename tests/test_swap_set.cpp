// Tests for the O(1)-swap partition structure behind every SE solution.

#include "mvcom/swap_set.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::core::Selection;
using mvcom::core::SwapSet;

TEST(SwapSetTest, RebuildReflectsBitmap) {
  const Selection x{1, 0, 1, 0, 0};
  SwapSet s(x);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.selected_count(), 2u);
  EXPECT_EQ(s.unselected_count(), 3u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_EQ(s.to_selection(), x);
}

TEST(SwapSetTest, SwapMovesExactlyOnePair) {
  SwapSet s(Selection{1, 0, 1, 0});
  s.swap(0, 1);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_EQ(s.selected_count(), 2u);
  EXPECT_EQ(s.to_selection(), (Selection{0, 1, 1, 0}));
}

TEST(SwapSetTest, SamplingOnlyReturnsMembersOfTheRightSide) {
  Rng rng(1);
  SwapSet s(Selection{1, 1, 0, 0, 1, 0});
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(s.contains(s.sample_selected(rng)));
    EXPECT_FALSE(s.contains(s.sample_unselected(rng)));
  }
}

TEST(SwapSetTest, SamplingCoversAllCandidates) {
  Rng rng(2);
  SwapSet s(Selection{1, 1, 1, 0, 0, 0});
  std::set<std::uint32_t> seen_sel;
  std::set<std::uint32_t> seen_unsel;
  for (int i = 0; i < 500; ++i) {
    seen_sel.insert(s.sample_selected(rng));
    seen_unsel.insert(s.sample_unselected(rng));
  }
  EXPECT_EQ(seen_sel, (std::set<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(seen_unsel, (std::set<std::uint32_t>{3, 4, 5}));
}

TEST(SwapSetTest, RandomizedSequenceMatchesReferenceSet) {
  // Property test: a long random swap sequence agrees with a std::set
  // reference implementation at every step.
  Rng rng(3);
  const std::size_t n = 40;
  Selection x(n, 0);
  for (std::size_t i = 0; i < n / 2; ++i) x[i] = 1;
  SwapSet s(x);
  std::set<std::uint32_t> reference;
  for (std::size_t i = 0; i < n / 2; ++i) {
    reference.insert(static_cast<std::uint32_t>(i));
  }

  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t out = s.sample_selected(rng);
    const std::uint32_t in = s.sample_unselected(rng);
    ASSERT_TRUE(reference.count(out));
    ASSERT_FALSE(reference.count(in));
    s.swap(out, in);
    reference.erase(out);
    reference.insert(in);
    ASSERT_EQ(s.selected_count(), reference.size());
    if (step % 100 == 0) {
      const Selection snapshot = s.to_selection();
      for (std::uint32_t i = 0; i < n; ++i) {
        ASSERT_EQ(snapshot[i] != 0, reference.count(i) > 0) << "bit " << i;
      }
    }
  }
}

TEST(SwapSetTest, SelectedListMatchesContains) {
  SwapSet s(Selection{0, 1, 0, 1, 1});
  std::set<std::uint32_t> from_list(s.selected().begin(), s.selected().end());
  EXPECT_EQ(from_list, (std::set<std::uint32_t>{1, 3, 4}));
}

}  // namespace
