// Adversarial and resource-bound tests for the PBFT simulation: partitions,
// cascaded leader failures, message-complexity bounds, and fault-mode edge
// cases beyond the happy paths of test_pbft.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/rng.hpp"
#include "consensus/pbft.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SimTime;
using mvcom::consensus::FaultMode;
using mvcom::consensus::PbftCluster;
using mvcom::consensus::PbftConfig;
using mvcom::consensus::PbftResult;
using mvcom::crypto::Sha256;
using mvcom::net::Network;
using mvcom::sim::Simulator;

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 1)
      : network(simulator, Rng(seed),
                std::make_shared<mvcom::net::UniformLatency>(SimTime(0.5),
                                                             SimTime(1.5)),
                n) {
    std::vector<mvcom::net::NodeId> members(n);
    std::iota(members.begin(), members.end(), 0u);
    PbftConfig config;
    config.view_change_timeout = SimTime(60.0);
    config.verification_mean = SimTime(0.2);
    cluster = std::make_unique<PbftCluster>(simulator, network, config,
                                            Rng(seed + 1), members);
  }
  Simulator simulator;
  Network network;
  std::unique_ptr<PbftCluster> cluster;
};

const auto kPayload = Sha256::hash("block");

TEST(PbftAdversarialTest, NetworkPartitionBlocksProgressUntilHealed) {
  Fixture fx(7);
  // Partition: 3 of 7 nodes unreachable (> f = 2): no quorum.
  for (mvcom::net::NodeId node : {4u, 5u, 6u}) {
    fx.network.set_failed(node, true);
  }
  bool decided = false;
  PbftResult outcome;
  fx.cluster->start_consensus(kPayload, [&](const PbftResult& r) {
    decided = true;
    outcome = r;
  });
  // Let the partition last a while: no decision possible.
  fx.simulator.run_until(SimTime(500.0));
  EXPECT_FALSE(decided);
  // Heal the partition; the periodic view-change retries re-broadcast and
  // the instance eventually commits.
  for (mvcom::net::NodeId node : {4u, 5u, 6u}) {
    fx.network.set_failed(node, false);
  }
  fx.simulator.run();
  ASSERT_TRUE(decided);
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(outcome.committed_digest, kPayload);
  EXPECT_TRUE(fx.cluster->committed_digests_consistent());
}

TEST(PbftAdversarialTest, TwoConsecutiveSilentLeadersStillCommit) {
  Fixture fx(7);  // f = 2: leaders of views 0 and 1 may both be faulty
  fx.cluster->set_fault(0, FaultMode::kSilent);
  fx.cluster->set_fault(1, FaultMode::kSilent);
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.committed_digest, kPayload);
  EXPECT_GE(result.view_changes, 1u);
  // Two timeouts were paid before a live leader took over.
  EXPECT_GT(result.latency.seconds(), 2 * 60.0);
}

TEST(PbftAdversarialTest, MessageComplexityIsQuadraticNotWorse) {
  // Happy path: pre-prepare (n−1) + prepare/commit broadcasts ≈ 2n² sends.
  for (const std::size_t n : {4u, 7u, 13u}) {
    Fixture fx(n, 5);
    const PbftResult result = fx.cluster->run_consensus(kPayload);
    ASSERT_TRUE(result.committed);
    const auto bound = static_cast<std::uint64_t>(3 * n * n);
    EXPECT_LE(result.messages, bound) << "n=" << n;
    EXPECT_GE(result.messages, static_cast<std::uint64_t>(n));
  }
}

TEST(PbftAdversarialTest, EquivocatorAsFollowerIsHarmless) {
  Fixture fx(4);
  fx.cluster->set_fault(2, FaultMode::kEquivocate);  // not the leader
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.committed_digest, kPayload);
  EXPECT_EQ(result.view_changes, 0u);
}

TEST(PbftAdversarialTest, EquivocatingLeaderAtScaleSweepsStaySafe) {
  for (const std::size_t n : {7u, 10u, 13u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Fixture fx(n, seed * 11);
      fx.cluster->set_fault(0, FaultMode::kEquivocate);
      fx.cluster->run_consensus(kPayload);
      EXPECT_TRUE(fx.cluster->committed_digests_consistent())
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(PbftAdversarialTest, MixedSilentAndEquivocatingWithinF) {
  Fixture fx(7);  // f = 2: one silent follower + equivocating leader
  fx.cluster->set_fault(0, FaultMode::kEquivocate);
  fx.cluster->set_fault(4, FaultMode::kSilent);
  fx.cluster->run_consensus(kPayload);
  EXPECT_TRUE(fx.cluster->committed_digests_consistent());
}

TEST(PbftAdversarialTest, HorizonAbortsReportNoCommit) {
  Fixture fx(4);
  // All followers crashed: nothing can ever commit; the horizon fires.
  fx.cluster->set_fault(1, FaultMode::kSilent);
  fx.cluster->set_fault(2, FaultMode::kSilent);
  fx.cluster->set_fault(3, FaultMode::kSilent);
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  EXPECT_FALSE(result.committed);
  for (const SimTime t : result.replica_commit_times) {
    EXPECT_TRUE(t.is_infinite());
  }
}

TEST(PbftAdversarialTest, SurvivesModerateMessageLoss) {
  // 5% independent loss: broadcast redundancy plus view-change retries keep
  // both safety and (eventual) liveness.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture fx(7, seed * 13);
    fx.network.set_loss_probability(0.05);
    const PbftResult result = fx.cluster->run_consensus(kPayload);
    EXPECT_TRUE(fx.cluster->committed_digests_consistent())
        << "seed " << seed;
    EXPECT_TRUE(result.committed) << "seed " << seed;
    if (result.committed) {
      EXPECT_EQ(result.committed_digest, kPayload);
    }
  }
}

TEST(PbftAdversarialTest, HeavyMessageLossSlowsButDoesNotForkDecisions) {
  Fixture fx(7, 3);
  fx.network.set_loss_probability(0.30);
  fx.cluster->run_consensus(kPayload);
  // Liveness may be gone at 30% loss; safety must not be.
  EXPECT_TRUE(fx.cluster->committed_digests_consistent());
  EXPECT_GT(fx.network.messages_dropped(), 0u);
}

TEST(PbftAdversarialTest, ReplicaCommitTimesAreOrderedAfterQuorumTime) {
  Fixture fx(7, 9);
  const PbftResult result = fx.cluster->run_consensus(kPayload);
  ASSERT_TRUE(result.committed);
  // The cluster's decision instant is when the quorum-th replica committed;
  // no committed replica can be earlier than the first commit.
  double earliest = 1e18;
  for (const SimTime t : result.replica_commit_times) {
    if (!t.is_infinite()) earliest = std::min(earliest, t.seconds());
  }
  EXPECT_LE(earliest, result.latency.seconds());
}

}  // namespace
