// Observability subsystem tests: instruments (counters/gauges/histograms),
// registry semantics, the trace ring, and every exporter — including the
// validators the CI smoke job relies on — plus one end-to-end chaos epoch
// asserting the event categories the harness promises.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chain/checkpoint.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "mvcom/fault_injection.hpp"
#include "pipeline/serve.hpp"
#include "obs/context.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "txn/trace_generator.hpp"
#include "txn/workload.hpp"

namespace {

using mvcom::obs::Counter;
using mvcom::obs::Gauge;
using mvcom::obs::LogHistogram;
using mvcom::obs::MetricsRegistry;
using mvcom::obs::ObsContext;
using mvcom::obs::TraceEvent;
using mvcom::obs::TraceRecorder;

TEST(CounterTest, IncAndAdd) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  MetricsRegistry registry;
  Counter& c = registry.counter("contended_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(LogHistogramTest, GeometricBoundsAndPlacement) {
  MetricsRegistry registry;
  LogHistogram& h = registry.histogram(
      "lat_seconds", "", {}, {.lowest = 1.0, .growth = 2.0, .count = 4});
  // Finite bounds 1, 2, 4, 8 plus +Inf.
  ASSERT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(3), 8.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(4)));

  h.observe(0.5);   // bucket 0 (le 1)
  h.observe(3.0);   // bucket 2 (le 4)
  h.observe(100.0); // +Inf bucket
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(1), 0u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  EXPECT_EQ(h.bucket_value(4), 1u);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_DOUBLE_EQ(h.total_sum(), 103.5);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x_total", "help", {{"k", "v"}});
  Counter& b = registry.counter("x_total", "ignored", {{"k", "v"}});
  Counter& other = registry.counter("x_total", "help", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistryTest, TypeConflictAndBadNamesThrow) {
  MetricsRegistry registry;
  registry.counter("x_total");
  EXPECT_THROW(registry.gauge("x_total"), std::invalid_argument);
  EXPECT_THROW(registry.counter("0bad"), std::invalid_argument);
  EXPECT_THROW(registry.counter("ok_total", "", {{"0bad", "v"}}),
               std::invalid_argument);
  // Degenerate histogram bucket specs are rejected at registration.
  EXPECT_THROW(registry.histogram("h_seconds", "", {},
                                  {.lowest = 0.0, .growth = 2.0, .count = 2}),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("h_seconds", "", {},
                                  {.lowest = 1.0, .growth = 1.0, .count = 2}),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("h_seconds", "", {},
                                  {.lowest = 1.0, .growth = 2.0, .count = 0}),
               std::invalid_argument);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z_total").inc();
  registry.gauge("a_gauge").set(7.0);
  registry.counter("m_total", "", {{"l", "b"}});
  registry.counter("m_total", "", {{"l", "a"}});
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "a_gauge");
  EXPECT_EQ(snap[1].name, "m_total");
  EXPECT_EQ(snap[1].labels[0].value, "a");
  EXPECT_EQ(snap[2].labels[0].value, "b");
  EXPECT_EQ(snap[3].name, "z_total");
  EXPECT_DOUBLE_EQ(snap[0].value, 7.0);
  EXPECT_DOUBLE_EQ(snap[3].value, 1.0);
}

TEST(PrometheusExportTest, TextFormatAndValidator) {
  MetricsRegistry registry;
  registry.counter("reqs_total", "Requests served", {{"code", "200"}}).add(3);
  registry.counter("reqs_total", "Requests served", {{"code", "500"}}).add(1);
  registry.gauge("temp_celsius", "Temperature").set(21.5);
  registry
      .histogram("lat_seconds", "Latency", {},
                 {.lowest = 0.1, .growth = 10.0, .count = 2})
      .observe(0.05);

  const std::string text = mvcom::obs::to_prometheus_text(registry);
  std::string error;
  EXPECT_TRUE(mvcom::obs::validate_prometheus_text(text, &error)) << error;

  // One HELP/TYPE header per family, even with two series in the family.
  std::size_t help_count = 0;
  for (std::size_t pos = text.find("# HELP reqs_total");
       pos != std::string::npos;
       pos = text.find("# HELP reqs_total", pos + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
  EXPECT_NE(text.find("reqs_total{code=\"200\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 1"), std::string::npos);
}

TEST(PrometheusExportTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("esc_total", "", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = mvcom::obs::to_prometheus_text(registry);
  std::string error;
  EXPECT_TRUE(mvcom::obs::validate_prometheus_text(text, &error)) << error;
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(PrometheusExportTest, ValidatorRejectsMalformedText) {
  std::string error;
  EXPECT_FALSE(mvcom::obs::validate_prometheus_text("not a sample\n", &error));
  EXPECT_FALSE(mvcom::obs::validate_prometheus_text("x{y=\"z\"} nope\n"));
  EXPECT_FALSE(
      mvcom::obs::validate_prometheus_text("missing_newline 1"));  // no '\n'
  EXPECT_TRUE(mvcom::obs::validate_prometheus_text("x 1\nx_inf +Inf\n"));
}

TEST(MetricsCsvExportTest, RoundTripsThroughCsvReader) {
  MetricsRegistry registry;
  registry.counter("c_total", "has, comma and \"quotes\"", {{"k", "v,w"}})
      .add(5);
  registry
      .histogram("h_seconds", "", {}, {.lowest = 1.0, .growth = 2.0, .count = 2})
      .observe(1.5);
  const auto path = std::filesystem::temp_directory_path() / "obs_metrics.csv";
  mvcom::obs::write_metrics_csv(registry, path);
  const auto file = mvcom::common::read_csv(path, /*expect_header=*/true);
  std::filesystem::remove(path);
  ASSERT_EQ(file.header.size(), 5u);
  EXPECT_EQ(file.header[0], "name");
  // 1 counter row + (2 finite + inf bucket + sum + count) histogram rows.
  ASSERT_EQ(file.rows.size(), 6u);
  EXPECT_EQ(file.rows[0][0], "c_total");
  EXPECT_EQ(file.rows[0][2], "k=\"v,w\"");  // embedded comma survived quoting
  EXPECT_EQ(file.rows[0][3], "value");
  EXPECT_EQ(file.rows[0][4], "5");
  EXPECT_EQ(file.rows[1][0], "h_seconds");
  EXPECT_EQ(file.rows[5][3], "count");
  EXPECT_EQ(file.rows[5][4], "1");
}

TEST(JsonTest, EscapeAndValidate) {
  EXPECT_EQ(mvcom::obs::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  std::string error;
  EXPECT_TRUE(mvcom::obs::validate_json(R"({"a":[1,2.5,-3e4,null,true,"x"]})",
                                        &error))
      << error;
  EXPECT_FALSE(mvcom::obs::validate_json("{\"a\":}"));
  EXPECT_FALSE(mvcom::obs::validate_json("[1,2"));
  EXPECT_FALSE(mvcom::obs::validate_json("{} trailing"));
}

TEST(TraceRecorderTest, StampsClocksAndSequence) {
  TraceRecorder recorder(16);
  recorder.instant("cat", "no-sim");
  double sim_now = 42.0;
  recorder.set_sim_clock([&sim_now] { return sim_now; });
  recorder.complete("cat", "span", 1.5, {{"k", 2.0}});
  recorder.set_sim_clock(nullptr);
  recorder.instant("cat", "detached");

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(std::isnan(events[0].sim_time_seconds));
  EXPECT_DOUBLE_EQ(events[1].sim_time_seconds, 42.0);
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_DOUBLE_EQ(events[1].duration_seconds, 1.5);
  ASSERT_EQ(events[1].arg_count(), 1u);
  EXPECT_STREQ(events[1].args[0].key, "k");
  EXPECT_TRUE(std::isnan(events[2].sim_time_seconds));
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_GE(events[2].wall_time_us, events[0].wall_time_us);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.instant("cat", "e", {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the last 4 records.
  EXPECT_DOUBLE_EQ(events.front().args[0].value, 6.0);
  EXPECT_DOUBLE_EQ(events.back().args[0].value, 9.0);
}

TEST(TraceRecorderTest, MergePreservesRelativeOrder) {
  TraceRecorder recorder(16);
  std::vector<TraceEvent> batch(2);
  batch[0].category = "se";
  batch[0].name = "a";
  batch[1].category = "se";
  batch[1].name = "b";
  recorder.merge(batch);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST(ChromeTraceExportTest, ValidJsonWithDualClockPids) {
  TraceRecorder recorder(16);
  recorder.instant("wallonly", "w");
  recorder.set_sim_clock([] { return 3.0; });
  recorder.complete("simmed", "s", 2.0);
  recorder.set_sim_clock(nullptr);

  const auto events = recorder.snapshot();
  const std::string json = mvcom::obs::to_chrome_trace_json(events);
  std::string error;
  EXPECT_TRUE(mvcom::obs::validate_json(json, &error)) << error;
  // Sim-clocked events land on pid 1, wall-only events on pid 2; the 'X'
  // span's start is rewound by its duration (3.0 s - 2.0 s -> ts 1e6 us).
  EXPECT_NE(json.find("\"pid\":2,"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process names
}

TEST(ObsContextTest, DefaultContextIsInert) {
  const ObsContext inert;
  EXPECT_EQ(inert.metrics(), nullptr);
  EXPECT_EQ(inert.trace(), nullptr);
  EXPECT_FALSE(static_cast<bool>(inert));
}

// End-to-end: a small chaos epoch with sinks attached must produce the
// event categories the observability contract promises, and its metrics
// must export cleanly.
TEST(ChaosObservabilityTest, EpochEmitsPromisedCategories) {
  if (!mvcom::obs::kEnabled) {
    GTEST_SKIP() << "built with MVCOM_OBS=OFF: ObsContext is inert";
  }
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 64;
  tc.target_total_txs = 64 * 500;
  mvcom::common::Rng trace_rng(7);
  const auto trace = mvcom::txn::generate_trace(tc, trace_rng);
  mvcom::txn::WorkloadConfig wc;
  wc.num_committees = 12;
  const mvcom::txn::WorkloadGenerator gen(trace, wc);
  mvcom::common::Rng workload_rng(8);
  const auto committees = mvcom::core::chaos_committees_from_reports(
      gen.epoch(workload_rng).reports);

  mvcom::core::FaultPlanConfig pc;
  pc.crashes = 1;
  pc.crash_recovers = 1;
  pc.stragglers = 1;
  pc.misreports = 1;
  mvcom::common::Rng plan_rng(9);
  const auto plan = mvcom::core::FaultPlan::randomized(pc, 12, plan_rng);

  std::uint64_t total_txs = 0;
  for (const auto& c : committees) total_txs += c.submission.claimed_tx_count;

  mvcom::core::ChaosConfig config;
  config.supervisor.scheduler.expected_committees = 12;
  config.supervisor.scheduler.capacity = (total_txs * 7) / 10;
  config.ddl_seconds = 1500.0;

  MetricsRegistry registry;
  TraceRecorder recorder;
  config.obs = ObsContext(&registry, &recorder);
  const auto report =
      mvcom::core::run_chaos_epoch(committees, plan, config, 11);
  EXPECT_FALSE(report.infeasible_while_feasible);

  std::set<std::string> categories;
  bool saw_epoch_start = false;
  bool saw_decide = false;
  for (const TraceEvent& e : recorder.snapshot()) {
    categories.insert(e.category);
    if (std::string(e.name) == "epoch/start") saw_epoch_start = true;
    if (std::string(e.name) == "epoch/decide") saw_decide = true;
    // Every chaos event is sim-clocked (the harness attaches the clock).
    EXPECT_FALSE(std::isnan(e.sim_time_seconds));
  }
  EXPECT_TRUE(saw_epoch_start);
  EXPECT_TRUE(saw_decide);
  EXPECT_TRUE(categories.count("epoch"));
  EXPECT_TRUE(categories.count("ladder"));
  EXPECT_TRUE(categories.count("net"));
  EXPECT_TRUE(categories.count("hb"));
  EXPECT_TRUE(categories.count("admission"));
  EXPECT_TRUE(categories.count("se"));  // SE bootstrapped and explored

  // Metric families every chaos run must touch, exported cleanly.
  double se_iterations = 0.0;
  double decisions = 0.0;
  for (const auto& m : registry.snapshot()) {
    if (m.name == "mvcom_se_iterations_total") se_iterations += m.value;
    if (m.name == "mvcom_supervisor_decisions_total") decisions += m.value;
  }
  EXPECT_GT(se_iterations, 0.0);
  EXPECT_GT(decisions, 0.0);

  std::string error;
  EXPECT_TRUE(mvcom::obs::validate_prometheus_text(
      mvcom::obs::to_prometheus_text(registry), &error))
      << error;
  const std::string json =
      mvcom::obs::to_chrome_trace_json(recorder.snapshot());
  EXPECT_TRUE(mvcom::obs::validate_json(json, &error)) << error;
}

// --- early-shutdown exporter flush -------------------------------------------

// A serve session stopped mid-stream (the SIGINT path calls exactly
// request_stop()) must still leave every artifact on disk, complete and
// valid: Prometheus text, the CSV snapshot, the Chrome trace, and a
// loadable checkpoint of whatever prefix of the chain was committed.
TEST(EarlyShutdownFlushTest, StoppedServeRunExportsValidArtifacts) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mvcom_obs_early_shutdown_test";
  fs::create_directories(dir);

  mvcom::pipeline::ServeConfig config;
  config.pipeline.committees = 5;
  config.pipeline.epochs = 6;
  config.pipeline.overlap_depth = 2;
  config.pipeline.workers = 2;
  config.pipeline.se.threads = 2;
  config.pipeline.se.max_iterations = 60;
  config.pipeline.se.convergence_window = 60;
  config.stream.num_blocks = 60;
  config.stream.target_total_txs = 30'000;
  config.metrics_out = (dir / "metrics.prom").string();
  config.metrics_csv_out = (dir / "metrics.csv").string();
  config.trace_out = (dir / "trace.json").string();
  config.checkpoint_out = (dir / "chain.ckpt").string();

  mvcom::pipeline::ServeSession session(config);
  std::size_t epochs_seen = 0;
  const auto summary =
      session.run([&](const mvcom::pipeline::EpochReport&) {
        if (++epochs_seen == 2) session.request_stop();
      });

  EXPECT_TRUE(summary.totals.stopped_early);
  EXPECT_EQ(summary.totals.epochs_run, 2u);
  EXPECT_TRUE(summary.chain_valid);
  EXPECT_TRUE(summary.artifacts_valid);

  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  std::string error;
  EXPECT_TRUE(
      mvcom::obs::validate_prometheus_text(slurp(dir / "metrics.prom"), &error))
      << error;
  EXPECT_TRUE(mvcom::obs::validate_json(slurp(dir / "trace.json"), &error))
      << error;
  const auto csv =
      mvcom::common::read_csv(dir / "metrics.csv", /*expect_header=*/true);
  EXPECT_FALSE(csv.rows.empty());
  if (mvcom::obs::kEnabled) {
    bool saw_epoch_counter = false;
    for (const auto& row : csv.rows) {
      if (row[0] == "mvcom_pipeline_epochs_total") saw_epoch_counter = true;
    }
    EXPECT_TRUE(saw_epoch_counter);
  }
  // The checkpoint captures exactly the committed prefix: genesis + 2 epochs.
  const auto restored =
      mvcom::chain::load_checkpoint_file((dir / "chain.ckpt").string());
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->validate_full());
  EXPECT_EQ(restored->size(), 3u);
  EXPECT_EQ(restored->total_txs(), summary.totals.committed_txs);

  fs::remove_all(dir);
}

}  // namespace
