// Tests for the common worker pool: batch completeness, barrier semantics,
// reuse across batches, the zero-worker inline degenerate case, and
// exception propagation.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using mvcom::common::ThreadPool;

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, BarrierCompletesBeforeReturn) {
  // Every task's side effect must be visible to the caller on return —
  // that's the barrier contract the SE share point relies on.
  ThreadPool pool(4);
  std::vector<std::uint64_t> out(513, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  // Workers are spawned once; submitting many batches must not leak, wedge,
  // or drop tasks.
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.parallel_for(16, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 200u * (16u * 17u / 2u));
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.parallel_for(8, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, CallerParticipatesInTheBatch) {
  // With more tasks than workers, the submitting thread must claim work too
  // — otherwise a pool of Γ−1 workers could not advance Γ explorers at full
  // width. Worker-run tasks stall until the caller has claimed one (bounded
  // by a deadline), so the assertion cannot race against the lone worker
  // draining the whole batch before the caller gets scheduled.
  ThreadPool pool(1);
  std::atomic<int> caller_tasks{0};
  const auto caller = std::this_thread::get_id();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  pool.parallel_for(64, [&](std::size_t) {
    if (std::this_thread::get_id() == caller) {
      caller_tasks.fetch_add(1, std::memory_order_relaxed);
    } else {
      while (caller_tasks.load(std::memory_order_relaxed) == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
  });
  EXPECT_GT(caller_tasks.load(), 0);
}

TEST(ThreadPoolTest, EmptyBatchIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, FirstExceptionIsRethrownAfterTheBarrier) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(32,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("task failed");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // The barrier still ran the remaining tasks to completion.
  EXPECT_EQ(completed.load(), 31);
}

}  // namespace
