// The streaming epoch pipeline's determinism matrix and cross-epoch
// correctness suite (mirrors test_elastico_lanes for the serve path):
//
//  * pipelined execution (overlap depth 2, any worker count) must be
//    bitwise identical to the sequential reference (depth 1) — per-epoch
//    event_order_digest, utility, and age accounting;
//  * SE warm start can never report worse than its seed, and the pipeline's
//    warm epochs are never worse than cold epochs under identical seeds;
//  * carried shards (including shards carried twice) are never double
//    counted: ingested == committed + pending on every exit path;
//  * the RNG substreams behind all of this are (seed, epoch)-derived, so
//    overlapped epochs draw identically to sequential ones.

#include "pipeline/epoch_pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "mvcom/se_scheduler.hpp"
#include "pipeline/serve.hpp"
#include "txn/trace_generator.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::pipeline::EpochPipeline;
using mvcom::pipeline::EpochReport;
using mvcom::pipeline::PipelineConfig;
using mvcom::pipeline::PipelineTotals;
using mvcom::txn::Trace;

Trace small_trace() {
  Rng rng(2016);
  mvcom::txn::TraceGeneratorConfig tc;
  tc.num_blocks = 90;
  tc.target_total_txs = 45'000;
  tc.mean_interblock_seconds = 15.0;
  return mvcom::txn::generate_trace(tc, rng);
}

PipelineConfig small_config() {
  PipelineConfig config;
  config.committees = 6;
  config.epochs = 4;
  config.capacity_fraction = 0.6;
  config.se.threads = 2;
  config.se.max_iterations = 150;
  config.se.convergence_window = 150;
  config.seed = 7;
  return config;
}

struct RunRecord {
  std::vector<EpochReport> reports;
  PipelineTotals totals;
};

RunRecord run_pipeline(const Trace& trace, PipelineConfig config) {
  EpochPipeline pipe(trace, config);
  RunRecord rec;
  rec.totals = pipe.run(
      [&](const EpochReport& r) { rec.reports.push_back(r); });
  EXPECT_TRUE(pipe.chain().validate_full());
  return rec;
}

// --- Determinism matrix ------------------------------------------------------

TEST(PipelineDeterminism, OverlapAndWorkersNeverChangeResults) {
  const Trace trace = small_trace();
  const PipelineConfig base = small_config();

  PipelineConfig ref_config = base;
  ref_config.overlap_depth = 1;
  ref_config.workers = 0;
  const RunRecord ref = run_pipeline(trace, ref_config);
  ASSERT_EQ(ref.reports.size(), base.epochs);

  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      PipelineConfig config = base;
      config.overlap_depth = depth;
      config.workers = workers;
      const RunRecord got = run_pipeline(trace, config);
      ASSERT_EQ(got.reports.size(), ref.reports.size())
          << "depth=" << depth << " workers=" << workers;
      for (std::size_t e = 0; e < ref.reports.size(); ++e) {
        const EpochReport& a = ref.reports[e];
        const EpochReport& b = got.reports[e];
        EXPECT_EQ(a.event_order_digest, b.event_order_digest)
            << "epoch " << e << " depth=" << depth << " workers=" << workers;
        EXPECT_EQ(a.utility, b.utility) << "epoch " << e;
        EXPECT_EQ(a.total_age, b.total_age) << "epoch " << e;
        EXPECT_EQ(a.committed_txs, b.committed_txs) << "epoch " << e;
        EXPECT_EQ(a.carried_txs, b.carried_txs) << "epoch " << e;
        EXPECT_EQ(a.start, b.start) << "epoch " << e;
        EXPECT_EQ(a.commit, b.commit) << "epoch " << e;
        EXPECT_EQ(a.des_events, b.des_events) << "epoch " << e;
      }
      EXPECT_EQ(got.totals.digest, ref.totals.digest);
      EXPECT_EQ(got.totals.committed_txs, ref.totals.committed_txs);
      EXPECT_EQ(got.totals.pending_txs, ref.totals.pending_txs);
      EXPECT_EQ(got.totals.total_age, ref.totals.total_age);
    }
  }
}

TEST(PipelineDeterminism, PowGrindingKeepsTheContract) {
  // Real PoW grinding in stage A must not perturb the matrix — the nonces
  // are a pure function of (seed, epoch) like every other stage-A output.
  const Trace trace = small_trace();
  PipelineConfig config = small_config();
  config.epochs = 2;
  config.pow_grind_bits = 6;

  config.overlap_depth = 1;
  config.workers = 0;
  const RunRecord ref = run_pipeline(trace, config);
  config.overlap_depth = 2;
  config.workers = 2;
  const RunRecord got = run_pipeline(trace, config);
  ASSERT_EQ(ref.reports.size(), got.reports.size());
  for (std::size_t e = 0; e < ref.reports.size(); ++e) {
    EXPECT_EQ(ref.reports[e].event_order_digest,
              got.reports[e].event_order_digest);
  }
}

// --- Account mode ------------------------------------------------------------

PipelineConfig account_config() {
  PipelineConfig config = small_config();
  config.account_mode = true;
  config.account.num_accounts = 4'000;
  config.account.txs_per_epoch = 3'000;
  config.account.cross_shard_ratio = 0.3;
  config.xshard.rounds_per_epoch = 32;
  config.xshard.shard_round_capacity = 32;
  return config;
}

TEST(PipelineAccountMode, OverlapAndWorkersNeverChangeResults) {
  // The account-mode stage A (traffic generation + assembly + x-shard
  // scheduling) must honor the same purity contract as block dealing: the
  // overlapped pipeline is bitwise identical to the sequential reference.
  const Trace trace = small_trace();
  const PipelineConfig base = account_config();

  PipelineConfig ref_config = base;
  ref_config.overlap_depth = 1;
  ref_config.workers = 0;
  const RunRecord ref = run_pipeline(trace, ref_config);
  ASSERT_EQ(ref.reports.size(), base.epochs);

  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      PipelineConfig config = base;
      config.overlap_depth = depth;
      config.workers = workers;
      const RunRecord got = run_pipeline(trace, config);
      ASSERT_EQ(got.reports.size(), ref.reports.size());
      for (std::size_t e = 0; e < ref.reports.size(); ++e) {
        const EpochReport& a = ref.reports[e];
        const EpochReport& b = got.reports[e];
        EXPECT_EQ(a.event_order_digest, b.event_order_digest)
            << "epoch " << e << " depth=" << depth << " workers=" << workers;
        EXPECT_EQ(a.utility, b.utility) << "epoch " << e;
        EXPECT_EQ(a.total_age, b.total_age) << "epoch " << e;
        EXPECT_EQ(a.committed_txs, b.committed_txs) << "epoch " << e;
        EXPECT_EQ(a.xshard_deferred_txs, b.xshard_deferred_txs)
            << "epoch " << e;
      }
      EXPECT_EQ(got.totals.digest, ref.totals.digest);
      EXPECT_EQ(got.totals.xshard_deferred_txs,
                ref.totals.xshard_deferred_txs);
    }
  }
}

TEST(PipelineAccountMode, ClassificationTalliesAreConsistent) {
  const Trace trace = small_trace();
  const PipelineConfig config = account_config();
  const RunRecord rec = run_pipeline(trace, config);
  std::uint64_t deferred = 0;
  for (const EpochReport& r : rec.reports) {
    // Every generated TX is classified exactly once per epoch.
    EXPECT_EQ(r.xshard_intra_txs + r.xshard_cross_txs + r.xshard_deferred_txs,
              config.account.txs_per_epoch)
        << "epoch " << r.epoch;
    EXPECT_GT(r.xshard_cross_txs, 0u);  // ratio 0.3 must produce 2-phase TXs
    deferred += r.xshard_deferred_txs;
  }
  EXPECT_EQ(rec.totals.xshard_deferred_txs, deferred);
  // What entered SE scheduling is the committed classification, never the
  // raw offered load.
  EXPECT_EQ(rec.totals.ingested_txs + rec.totals.xshard_deferred_txs,
            static_cast<std::uint64_t>(config.epochs) *
                config.account.txs_per_epoch);
  EXPECT_EQ(rec.totals.ingested_txs,
            rec.totals.committed_txs + rec.totals.pending_txs);
}

TEST(PipelineAccountMode, BlockModeReportsCarryNoXshardTallies) {
  const Trace trace = small_trace();
  const RunRecord rec = run_pipeline(trace, small_config());
  for (const EpochReport& r : rec.reports) {
    EXPECT_EQ(r.xshard_intra_txs, 0u);
    EXPECT_EQ(r.xshard_cross_txs, 0u);
    EXPECT_EQ(r.xshard_deferred_txs, 0u);
  }
  EXPECT_EQ(rec.totals.xshard_deferred_txs, 0u);
}

// --- Warm start --------------------------------------------------------------

TEST(PipelineWarmStart, SchedulerNeverReportsWorseThanItsSeed) {
  // The structural guarantee behind the pipeline's warm start: run() after
  // warm_start(seed) can never report a feasible utility below the seed's,
  // even with a tiny exploration budget.
  std::vector<mvcom::core::Committee> committees;
  Rng rng(11);
  for (std::uint32_t i = 0; i < 30; ++i) {
    committees.push_back({i, 500 + rng.below(4000), rng.uniform(10.0, 600.0)});
  }
  std::uint64_t total = 0;
  for (const auto& c : committees) total += c.txs;
  const mvcom::core::EpochInstance instance(committees, 1.5, (total * 6) / 10,
                                            2);
  // A decent seed: every SE run below gets almost no iterations, so without
  // the floor it would frequently land beneath this.
  mvcom::core::SeParams probe;
  probe.threads = 2;
  probe.max_iterations = 400;
  probe.convergence_window = 400;
  const auto strong =
      mvcom::core::SeScheduler(instance, probe, 99).run();
  ASSERT_TRUE(strong.feasible);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    mvcom::core::SeParams params;
    params.threads = 2;
    params.max_iterations = 3;
    params.convergence_window = 3;
    mvcom::core::SeScheduler warm(instance, params, seed);
    const double floor = warm.warm_start(strong.best);
    ASSERT_FALSE(std::isnan(floor));
    EXPECT_DOUBLE_EQ(floor, strong.utility);
    const auto result = warm.run();
    ASSERT_TRUE(result.feasible);
    EXPECT_GE(result.utility, floor);
  }
}

TEST(PipelineWarmStart, WarmEpochsNeverWorseThanColdUnderSameSeeds) {
  // With a starved exploration budget the cold pipeline has to rely on its
  // random initial family, while the warm one starts every epoch from the
  // greedy cross-epoch seed — epoch for epoch, warm must not lose.
  const Trace trace = small_trace();
  PipelineConfig config = small_config();
  config.se.max_iterations = 20;
  config.se.convergence_window = 20;

  config.warm_start = false;
  const RunRecord cold = run_pipeline(trace, config);
  config.warm_start = true;
  const RunRecord warm = run_pipeline(trace, config);
  ASSERT_EQ(cold.reports.size(), warm.reports.size());
  for (std::size_t e = 0; e < warm.reports.size(); ++e) {
    ASSERT_TRUE(warm.reports[e].feasible);
    if (!std::isnan(warm.reports[e].warm_seed_utility)) {
      // The floor held: the epoch can never close below its seed.
      EXPECT_GE(warm.reports[e].utility,
                warm.reports[e].warm_seed_utility);
    }
    if (cold.reports[e].feasible) {
      EXPECT_GE(warm.reports[e].utility, cold.reports[e].utility)
          << "epoch " << e;
    }
  }
}

// --- Carry-over accounting ---------------------------------------------------

TEST(PipelineCarryOver, NoDoubleCountWhenShardsCarryTwice) {
  // A tight capacity defers most shards every epoch, so some are carried
  // two or more times; none of that may double-count a transaction.
  const Trace trace = small_trace();
  PipelineConfig config = small_config();
  config.epochs = 5;
  config.capacity_fraction = 0.25;

  const RunRecord rec = run_pipeline(trace, config);
  EXPECT_GE(rec.totals.max_shard_carries, 2u)
      << "config failed to force a double carry — tighten the capacity";
  EXPECT_EQ(rec.totals.ingested_txs,
            rec.totals.committed_txs + rec.totals.pending_txs);
  // Every TX the trace offered inside the windows was ingested exactly once.
  EXPECT_EQ(rec.totals.ingested_txs, trace.total_txs());
}

TEST(PipelineCarryOver, RealizedBoundaryNeverPrecedesPreviousCommit) {
  const Trace trace = small_trace();
  const RunRecord rec = run_pipeline(trace, small_config());
  double prev_commit = 0.0;
  for (const EpochReport& r : rec.reports) {
    EXPECT_GE(r.start, r.window_end - 1e-9);
    EXPECT_GE(r.start, prev_commit - 1e-9)
        << "epoch " << r.epoch << " started before its predecessor committed";
    EXPECT_GT(r.commit, r.start);
    prev_commit = r.commit;
  }
}

// --- Stop + chain ------------------------------------------------------------

TEST(PipelineStop, GracefulStopKeepsAccountingConsistent) {
  const Trace trace = small_trace();
  EpochPipeline pipe(trace, small_config());
  std::size_t seen = 0;
  const PipelineTotals totals = pipe.run([&](const EpochReport&) {
    if (++seen == 2) pipe.request_stop();
  });
  EXPECT_TRUE(totals.stopped_early);
  EXPECT_EQ(totals.epochs_run, 2u);
  EXPECT_EQ(totals.ingested_txs, totals.committed_txs + totals.pending_txs);
  EXPECT_TRUE(pipe.chain().validate_full());
  EXPECT_EQ(pipe.chain().size(), 3u);  // genesis + 2 epochs
  EXPECT_EQ(pipe.chain().total_txs(), totals.committed_txs);
}

TEST(ServeSessionStop, EarlyStopStillFlushesValidArtifacts) {
  // Satellite hardening: a stop request landing mid-run (what the SIGINT
  // handler does) must still leave a valid root-chain checkpoint and
  // validator-passing exporter artifacts — the scope-exit flush path.
  const std::string dir = ::testing::TempDir();
  mvcom::pipeline::ServeConfig config;
  config.pipeline = small_config();
  config.pipeline.epochs = 6;
  config.stream.num_blocks = 90;
  config.stream.target_total_txs = 45'000;
  config.stream.mean_interblock_seconds = 15.0;
  config.metrics_out = dir + "serve_stop_metrics.prom";
  config.metrics_csv_out = dir + "serve_stop_metrics.csv";
  config.trace_out = dir + "serve_stop_trace.json";
  config.checkpoint_out = dir + "serve_stop_checkpoint.json";
  config.checkpoint_every = 1;
  mvcom::pipeline::ServeSession session(config);
  std::size_t seen = 0;
  const mvcom::pipeline::ServeSummary summary =
      session.run([&](const EpochReport&) {
        // Fires from inside the pipeline, like the signal handler would.
        if (++seen == 2) session.request_stop();
      });
  EXPECT_TRUE(summary.totals.stopped_early);
  EXPECT_EQ(summary.totals.epochs_run, 2u);
  EXPECT_TRUE(summary.chain_valid);
  EXPECT_TRUE(summary.artifacts_valid);
  EXPECT_GE(summary.checkpoints_written, 2u);
  // Truncated-run accounting stays exact.
  EXPECT_EQ(summary.totals.ingested_txs,
            summary.totals.committed_txs + summary.totals.pending_txs);
}

TEST(PipelineChain, EveryEpochExtendsTheRootChain) {
  const Trace trace = small_trace();
  EpochPipeline pipe(trace, small_config());
  const PipelineTotals totals = pipe.run();
  EXPECT_EQ(pipe.chain().size(), totals.epochs_run + 1);
  EXPECT_EQ(pipe.chain().total_txs(), totals.committed_txs);
  EXPECT_TRUE(pipe.chain().validate_full());
}

}  // namespace
