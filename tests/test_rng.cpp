// Unit and statistical tests for common/rng — determinism, bounds,
// unbiasedness, and distribution moments. Every stochastic result in the
// repository rests on this engine, so the moments are checked tightly.

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <set>
#include <span>
#include <vector>

#include "mvcom/se_scheduler.hpp"

namespace {

using mvcom::common::Rng;
using mvcom::common::SplitMix64;

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(7);
  parent2.fork();
  std::vector<std::uint64_t> child_seq;
  Rng child2 = Rng(7).fork();
  for (int i = 0; i < 100; ++i) child_seq.push_back(child2());
  // Deterministic: forking from the same root gives the same child.
  Rng child3 = Rng(7).fork();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child3(), child_seq[static_cast<std::size_t>(i)]);
  }
  // And different from the parent's own continued stream.
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) any_diff |= (parent2() != child());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, StreamIsOrderIndependent) {
  // stream(seed, i) must depend only on (seed, i) — never on how many draws
  // any other stream has made. This is the property fork() lacks and the
  // reason overlapped epochs derive their engines through stream().
  std::vector<std::uint64_t> forward;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Rng r = Rng::stream(99, i);
    forward.push_back(r());
  }
  for (std::uint64_t i = 8; i-- > 0;) {
    Rng r = Rng::stream(99, i);  // derive in reverse order
    EXPECT_EQ(r(), forward[i]);
  }
  // Interleaved draws from two streams match two independent replays.
  Rng a = Rng::stream(99, 2);
  Rng b = Rng::stream(99, 5);
  std::vector<std::uint64_t> mixed_a;
  std::vector<std::uint64_t> mixed_b;
  for (int i = 0; i < 50; ++i) {
    mixed_a.push_back(a());
    mixed_b.push_back(b());
    mixed_b.push_back(b());
  }
  Rng a2 = Rng::stream(99, 2);
  Rng b2 = Rng::stream(99, 5);
  for (const std::uint64_t v : mixed_a) ASSERT_EQ(a2(), v);
  for (const std::uint64_t v : mixed_b) ASSERT_EQ(b2(), v);
}

TEST(RngTest, StreamIndicesDoNotAlias) {
  // Distinct (seed, index) pairs in a realistic window must give distinct
  // engines — 4 streams per epoch over thousands of epochs.
  std::set<std::uint64_t> first_draws;
  constexpr std::uint64_t kStreams = 4 * 4096;
  for (std::uint64_t i = 0; i < kStreams; ++i) {
    Rng r = Rng::stream(0xfeedULL, i);
    first_draws.insert(r());
  }
  EXPECT_EQ(first_draws.size(), kStreams);
  // Different seeds under the same index diverge too.
  EXPECT_NE(Rng::stream(1, 0)(), Rng::stream(2, 0)());
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(5);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 33)}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.below(n), n);
    }
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 7;
  std::array<int, kBuckets> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / static_cast<double>(kBuckets),
                0.05 * n / static_cast<double>(kBuckets));
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  const double mean = 600.0;  // the paper's PoW solve expectation
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, 0.01 * mean);
}

TEST(RngTest, ExponentialIsNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(29);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, LognormalTargetsRequestedMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_mean_sd(54.5, 20.0);
    ASSERT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 54.5, 0.5);
  EXPECT_NEAR(sd, 20.0, 0.6);
}

TEST(RngTest, PoissonMeanMatchesSmallAndLargeLambda) {
  Rng rng(37);
  for (const double lambda : {0.5, 5.0, 30.0, 500.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(lambda));
    }
    EXPECT_NEAR(sum / n, lambda, std::max(0.05, 0.02 * lambda))
        << "lambda=" << lambda;
  }
}

TEST(RngTest, SampleIndicesAreDistinctAndInRange) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_indices(50, 20);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const std::size_t i : sample) EXPECT_LT(i, 50u);
  }
}

TEST(RngTest, SampleIndicesFullSetIsPermutation) {
  Rng rng(43);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(53);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(61);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.bounded_pareto(2.0, 50.0, 1.3);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 50.0);
  }
}

TEST(RngTest, BoundedParetoMatchesAnalyticCdf) {
  // Truncated Pareto: F(x) = (1 − (lo/x)^a) / (1 − (lo/hi)^a). Check the
  // empirical CDF at a few interior points.
  const double lo = 1.0, hi = 100.0, alpha = 1.5;
  Rng rng(67);
  const int n = 400000;
  const double points[] = {2.0, 5.0, 20.0};
  int below[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) {
    const double x = rng.bounded_pareto(lo, hi, alpha);
    for (int p = 0; p < 3; ++p) below[p] += x <= points[p] ? 1 : 0;
  }
  const double denom = 1.0 - std::pow(lo / hi, alpha);
  for (int p = 0; p < 3; ++p) {
    const double expect = (1.0 - std::pow(lo / points[p], alpha)) / denom;
    EXPECT_NEAR(static_cast<double>(below[p]) / n, expect, 0.01)
        << "x=" << points[p];
  }
}

TEST(ZipfSamplerTest, MatchesAnalyticPmf) {
  // P(rank = k) = (k+1)^{-s} / H_{n,s}; the hot head is where the account
  // model's contention comes from, so the head probabilities are checked
  // tightly.
  const std::size_t n = 100;
  const double s = 1.1;
  const mvcom::common::ZipfSampler zipf(n, s);
  EXPECT_EQ(zipf.size(), n);
  EXPECT_DOUBLE_EQ(zipf.skew(), s);
  double harmonic = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    harmonic += 1.0 / std::pow(static_cast<double>(k), s);
  }
  Rng rng(71);
  std::vector<int> counts(n, 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) {
    const std::uint32_t k = zipf(rng);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  for (std::size_t k = 0; k < 5; ++k) {
    const double expect = 1.0 / std::pow(static_cast<double>(k + 1), s) /
                          harmonic;
    EXPECT_NEAR(static_cast<double>(counts[k]) / draws, expect, 0.15 * expect)
        << "rank " << k;
  }
  // Head dominance: rank 0 beats every deep-tail rank.
  EXPECT_GT(counts[0], counts[n - 1]);
}

TEST(ZipfSamplerTest, ZeroSkewIsUniform) {
  const std::size_t n = 16;
  const mvcom::common::ZipfSampler zipf(n, 0.0);
  Rng rng(73);
  std::vector<int> counts(n, 0);
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++counts[zipf(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / static_cast<double>(n),
                0.05 * draws / static_cast<double>(n));
  }
}

TEST(ZipfSamplerTest, FillMatchesSequentialDraws) {
  // fill() must consume exactly one engine step per variate and produce the
  // same sequence as repeated operator() — the fill_uniform01 discipline.
  const mvcom::common::ZipfSampler zipf(1000, 1.2);
  Rng a(79);
  Rng b(79);
  std::vector<std::uint32_t> batch(257);
  zipf.fill(a, std::span<std::uint32_t>(batch));
  for (const std::uint32_t v : batch) {
    ASSERT_EQ(zipf(b), v);
  }
  // Both engines are now in the same state.
  EXPECT_EQ(a(), b());
}

// Property sweep: the exponential distribution's memorylessness is what
// justifies both the PoW latency model and the SE timer race; check the
// conditional-mean property over several means.
class ExponentialMemorylessTest : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMemorylessTest, ConditionalTailMeanEqualsMean) {
  const double mean = GetParam();
  Rng rng(59);
  const double threshold = mean;  // condition on X > mean
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < 600000; ++i) {
    const double x = rng.exponential(mean);
    if (x > threshold) {
      sum += x - threshold;
      ++count;
    }
  }
  ASSERT_GT(count, 1000);
  EXPECT_NEAR(sum / count, mean, 0.05 * mean);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMemorylessTest,
                         ::testing::Values(1.0, 54.5, 600.0));

// ---------------------------------------------------------------------------
// fill_exponential: the batched transform must be pinned to the scalar
// exponential() loop ULP-for-ULP, for every batch length around the SIMD
// block width — empty, single, odd tails, and exact multiples — because the
// DES kernel path (PBFT verification delays) swaps one for the other and the
// determinism contract is bitwise equality, not closeness.
// ---------------------------------------------------------------------------

TEST(RngTest, FillExponentialMatchesScalarLoopUlpForUlp) {
  // kWidth in fill_exponential is 4; cover 0..2*width+1 plus a larger odd
  // size so every (full blocks, tail) combination is exercised.
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 1021u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    for (const double mean : {0.2, 1.0, 600.0}) {
      Rng batched(91 + n);
      Rng scalar(91 + n);
      std::vector<double> out(n);
      batched.fill_exponential(std::span<double>(out), mean);
      for (std::size_t i = 0; i < n; ++i) {
        const double want = scalar.exponential(mean);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                  std::bit_cast<std::uint64_t>(want))
            << "mean " << mean << " index " << i;
      }
      // Exactly n engine steps consumed: both engines now coincide.
      ASSERT_EQ(batched(), scalar());
    }
  }
}

TEST(RngTest, FillExponentialIsNonNegativeAndFinite) {
  Rng rng(17);
  std::vector<double> out(4096);
  rng.fill_exponential(std::span<double>(out), 54.5);
  for (const double v : out) {
    ASSERT_GE(v, 0.0);
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(RngTest, LogOfBatchedExponentialCommutesWithSeTimerClamp) {
  // The SE timer race was refactored from detail::log_unit_exponential(u)
  // (clamp u, then log(-log1p(-u))) to log(max(fill_exponential draw,
  // DBL_MIN)) (draw Exp(1), then clamp the variate). Pin the proof that the
  // clamps commute bitwise for every uniform01() output: any u >= 2^-53
  // leaves both clamps inert, and u == 0 maps to the same DBL_MIN endpoint.
  const auto refactored = [](double u) {
    const double e = -std::log1p(-u);  // fill_exponential with mean 1
    return std::log(std::max(e, std::numeric_limits<double>::min()));
  };
  // The degenerate endpoint and the smallest/largest reachable draws.
  for (const double u : {0.0, 0x1.0p-53, 0x1.0p-30, 1.0 - 0x1.0p-53}) {
    SCOPED_TRACE(u);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(refactored(u)),
              std::bit_cast<std::uint64_t>(
                  mvcom::core::detail::log_unit_exponential(u)));
  }
  // Random sweep over actual engine output.
  Rng rng(23);
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform01();
    ASSERT_EQ(std::bit_cast<std::uint64_t>(refactored(u)),
              std::bit_cast<std::uint64_t>(
                  mvcom::core::detail::log_unit_exponential(u)))
        << "u=" << u;
  }
}

TEST(RngTest, BatchedCallSiteSubstreamsDoNotAlias) {
  // Regression for the new batched call sites (PBFT verification delays, SE
  // timer race): batching must not tempt a caller into sharing one stream
  // index across logically distinct substreams. Distinct stream indices must
  // produce distinct batched output even under identical seeds and lengths.
  Rng a = Rng::stream(1234, 7);
  Rng b = Rng::stream(1234, 8);
  std::vector<double> va(64);
  std::vector<double> vb(64);
  a.fill_exponential(std::span<double>(va), 1.0);
  b.fill_exponential(std::span<double>(vb), 1.0);
  std::size_t equal = 0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(va[i]) ==
        std::bit_cast<std::uint64_t>(vb[i])) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0u);
  // And the same stream re-derived is bitwise reproducible.
  Rng a2 = Rng::stream(1234, 7);
  std::vector<double> va2(64);
  a2.fill_exponential(std::span<double>(va2), 1.0);
  for (std::size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(va[i]),
              std::bit_cast<std::uint64_t>(va2[i]));
  }
}

}  // namespace
