// Pins the repository-wide FNV-1a contract (common/fnv.hpp).
//
// Every determinism witness in the repo — the DES order digest, the Elastico
// per-lane merge, the x-shard ledger digest, the adversary decision digest,
// the checkpoint checksum, the obs event digest, the fabric frame checksum —
// folds with these exact constants and these exact two folds. The values
// below are therefore NOT free to change: a new constant would silently
// invalidate every recorded digest and every cross-build digest diff in CI.
// The byte-fold vectors are the published FNV-1a test vectors; the mix-fold
// vectors pin this repo's (intentional) whole-word variant.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/fnv.hpp"

namespace {

using mvcom::common::fnv1a;
using mvcom::common::fnv1a_byte;
using mvcom::common::fnv1a_bytes;
using mvcom::common::fnv1a_mix;
using mvcom::common::kFnv1aBasis;
using mvcom::common::kFnv1aPrime;

TEST(Fnv, ConstantsArePinned) {
  EXPECT_EQ(kFnv1aBasis, 0xcbf29ce484222325ULL);
  EXPECT_EQ(kFnv1aPrime, 0x100000001b3ULL);
}

TEST(Fnv, ByteFoldMatchesPublishedVectors) {
  // Landon Curt Noll's official 64-bit FNV-1a test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("b"), 0xaf63df4c8601f1a5ULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv, ByteAndBufferFoldsAgree) {
  const std::array<std::uint8_t, 4> bytes{0x01, 0x02, 0xff, 0x00};
  std::uint64_t h = kFnv1aBasis;
  for (const std::uint8_t b : bytes) h = fnv1a_byte(h, b);
  EXPECT_EQ(h, fnv1a(std::span<const std::uint8_t>(bytes)));
}

TEST(Fnv, StringAndSpanOverloadsAgree) {
  const std::string_view text = "mvcom";
  std::array<std::uint8_t, 5> bytes{};
  for (std::size_t i = 0; i < text.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(text[i]);
  }
  EXPECT_EQ(fnv1a(text), fnv1a(std::span<const std::uint8_t>(bytes)));
}

TEST(Fnv, MixFoldIsPinned) {
  // The whole-word variant used by every digest merge. Pinned by value:
  // these numbers are what all recorded event_order_digest histories and
  // the CI cross-build digest diffs were computed with.
  EXPECT_EQ(fnv1a_mix(kFnv1aBasis, 0), 0xaf63bd4c8601b7dfULL);
  EXPECT_EQ(fnv1a_mix(kFnv1aBasis, 0xdeadbeefcafef00dULL),
            0x2d7a0137013accf8ULL);
  EXPECT_EQ(fnv1a_mix(fnv1a_mix(kFnv1aBasis, 1), 2), 0x082f2407b4e8902aULL);
}

TEST(Fnv, MixIsNotTheByteFold) {
  // fnv1a_mix(h, v) absorbs v in ONE multiply; feeding v's 8 bytes through
  // the byte fold gives a different digest. Both variants are part of the
  // contract — this test documents that they must never be "unified".
  const std::uint64_t v = 0x0123456789abcdefULL;
  std::uint64_t byte_fold = kFnv1aBasis;
  for (int i = 0; i < 8; ++i) {
    byte_fold = fnv1a_byte(byte_fold, static_cast<std::uint8_t>(v >> (8 * i)));
  }
  EXPECT_NE(fnv1a_mix(kFnv1aBasis, v), byte_fold);
}

TEST(Fnv, MixOrderMatters) {
  EXPECT_NE(fnv1a_mix(fnv1a_mix(kFnv1aBasis, 1), 2),
            fnv1a_mix(fnv1a_mix(kFnv1aBasis, 2), 1));
}

TEST(Fnv, ConstexprUsable) {
  static_assert(fnv1a("mvcom") != 0);
  static_assert(fnv1a_mix(kFnv1aBasis, 42) != kFnv1aBasis);
  SUCCEED();
}

}  // namespace
