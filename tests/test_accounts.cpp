// Unit tests for txn/accounts — the account-based traffic generator:
// keyed-stream purity, structural invariants of the generated TXs, and the
// behavior of the workload knobs (cross-shard ratio, Zipf skew, bursts).

#include "txn/accounts/model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace {

using mvcom::txn::AccountEpoch;
using mvcom::txn::AccountModelConfig;
using mvcom::txn::AccountTx;
using mvcom::txn::AccountTxGenerator;
using mvcom::txn::home_shard;

AccountModelConfig small_config() {
  AccountModelConfig config;
  config.num_accounts = 5'000;
  config.num_shards = 10;
  config.txs_per_epoch = 2'000;
  return config;
}

bool same_tx(const AccountTx& a, const AccountTx& b) {
  return a.tx_id == b.tx_id && a.timestamp == b.timestamp &&
         a.sender == b.sender && a.reads == b.reads && a.writes == b.writes;
}

bool same_epoch(const AccountEpoch& a, const AccountEpoch& b) {
  if (a.epoch_index != b.epoch_index || a.window_start != b.window_start ||
      a.window_end != b.window_end || a.txs.size() != b.txs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.txs.size(); ++i) {
    if (!same_tx(a.txs[i], b.txs[i])) return false;
  }
  return true;
}

/// True when the TX touches any account homed off `shard`.
bool crosses(const AccountTx& tx, std::uint32_t num_shards) {
  const std::uint32_t home = home_shard(tx.sender, num_shards);
  bool cross = false;
  tx.for_each_account([&](std::uint32_t account, bool /*write*/) {
    cross |= home_shard(account, num_shards) != home;
  });
  return cross;
}

TEST(AccountModelTest, EpochKeyedIsPureAndOrderIndependent) {
  const AccountTxGenerator gen(small_config());
  const AccountEpoch third = gen.epoch_keyed(7, 3);
  // Replaying the same (seed, epoch) is bitwise identical…
  EXPECT_TRUE(same_epoch(third, gen.epoch_keyed(7, 3)));
  // …and generating other epochs in between changes nothing: epoch traffic
  // is a pure function of (seed, k), never of generation order.
  (void)gen.epoch_keyed(7, 0);
  (void)gen.epoch_keyed(7, 9);
  EXPECT_TRUE(same_epoch(third, gen.epoch_keyed(7, 3)));
}

TEST(AccountModelTest, SeedsAndEpochsProduceDistinctTraffic) {
  const AccountTxGenerator gen(small_config());
  EXPECT_FALSE(same_epoch(gen.epoch_keyed(7, 0), gen.epoch_keyed(8, 0)));
  const AccountEpoch e0 = gen.epoch_keyed(7, 0);
  const AccountEpoch e1 = gen.epoch_keyed(7, 1);
  ASSERT_EQ(e0.txs.size(), e1.txs.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < e0.txs.size(); ++i) {
    any_diff |= e0.txs[i].sender != e1.txs[i].sender ||
                e0.txs[i].timestamp != e1.txs[i].timestamp;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AccountModelTest, StructuralInvariantsHold) {
  const AccountModelConfig config = small_config();
  const AccountTxGenerator gen(config);
  const AccountEpoch epoch = gen.epoch_keyed(11, 2);
  EXPECT_EQ(epoch.txs.size(), config.txs_per_epoch);
  EXPECT_DOUBLE_EQ(epoch.window_end - epoch.window_start,
                   config.window_seconds);
  double prev_ts = epoch.window_start;
  for (const AccountTx& tx : epoch.txs) {
    // Timestamp-sorted, inside the epoch window.
    EXPECT_GE(tx.timestamp, prev_ts);
    EXPECT_LT(tx.timestamp, epoch.window_end);
    prev_ts = tx.timestamp;
    // Accounts in range, sender excluded from both sets, no duplicates.
    std::set<std::uint32_t> seen{tx.sender};
    EXPECT_LT(tx.sender, config.num_accounts);
    tx.for_each_account([&](std::uint32_t account, bool /*write*/) {
      EXPECT_LT(account, config.num_accounts);
      if (account != tx.sender) {
        EXPECT_TRUE(seen.insert(account).second)
            << "duplicate account " << account << " in tx " << tx.tx_id;
      }
    });
    EXPECT_LE(tx.reads.size(), config.max_extra_reads);
    EXPECT_LE(tx.writes.size(), config.max_extra_writes);
  }
}

TEST(AccountModelTest, RatioZeroKeepsEveryTxOnItsHomeShard) {
  AccountModelConfig config = small_config();
  config.cross_shard_ratio = 0.0;
  const AccountTxGenerator gen(config);
  const AccountEpoch epoch = gen.epoch_keyed(13, 0);
  for (const AccountTx& tx : epoch.txs) {
    EXPECT_FALSE(crosses(tx, config.num_shards)) << "tx " << tx.tx_id;
  }
}

TEST(AccountModelTest, CrossShardRatioKnobIsMonotone) {
  double prev_fraction = -1.0;
  for (const double ratio : {0.0, 0.3, 0.8}) {
    AccountModelConfig config = small_config();
    config.cross_shard_ratio = ratio;
    const AccountTxGenerator gen(config);
    const AccountEpoch epoch = gen.epoch_keyed(17, 0);
    std::size_t cross = 0;
    for (const AccountTx& tx : epoch.txs) {
      cross += crosses(tx, config.num_shards) ? 1u : 0u;
    }
    const double fraction =
        static_cast<double>(cross) / static_cast<double>(epoch.txs.size());
    EXPECT_GT(fraction, prev_fraction) << "ratio " << ratio;
    prev_fraction = fraction;
  }
}

TEST(AccountModelTest, ZipfSkewConcentratesAccess) {
  // The hottest 1% of accounts should absorb far more of the access mass
  // under skew 1.2 than under a uniform (skew 0) population.
  double shares[2] = {0.0, 0.0};
  int arm = 0;
  for (const double skew : {0.0, 1.2}) {
    AccountModelConfig config = small_config();
    config.zipf_skew = skew;
    const AccountTxGenerator gen(config);
    const AccountEpoch epoch = gen.epoch_keyed(19, 0);
    const std::uint32_t hot_cut = config.num_accounts / 100;
    std::uint64_t total = 0, hot = 0;
    for (const AccountTx& tx : epoch.txs) {
      tx.for_each_account([&](std::uint32_t account, bool /*write*/) {
        ++total;
        // Zipf rank r is spread over shards as account ids; the generator
        // assigns low ids the high ranks, so "hot" is just a low id.
        hot += account < hot_cut ? 1 : 0;
      });
    }
    shares[arm++] = static_cast<double>(hot) / static_cast<double>(total);
  }
  EXPECT_GT(shares[1], 4.0 * shares[0]);
}

TEST(AccountModelTest, BurstsConcentrateArrivals) {
  // With bursts on, some narrow sub-window must hold far more than its
  // uniform share of arrivals.
  AccountModelConfig config = small_config();
  config.burst_fraction = 0.5;
  config.bursts_per_epoch = 2;
  config.burst_width_fraction = 0.02;
  const AccountTxGenerator gen(config);
  const AccountEpoch epoch = gen.epoch_keyed(23, 1);
  constexpr std::size_t kBins = 100;
  std::vector<std::size_t> bins(kBins, 0);
  for (const AccountTx& tx : epoch.txs) {
    const double frac = (tx.timestamp - epoch.window_start) /
                        (epoch.window_end - epoch.window_start);
    ++bins[std::min(kBins - 1, static_cast<std::size_t>(frac * kBins))];
  }
  const std::size_t peak = *std::max_element(bins.begin(), bins.end());
  const double uniform_share =
      static_cast<double>(epoch.txs.size()) / static_cast<double>(kBins);
  EXPECT_GT(static_cast<double>(peak), 5.0 * uniform_share);
}

TEST(AccountModelTest, ConstructorValidatesConfig) {
  AccountModelConfig too_few = small_config();
  too_few.num_accounts = too_few.num_shards;  // < 2 per shard
  EXPECT_THROW(AccountTxGenerator{too_few}, std::invalid_argument);
  AccountModelConfig bad_ratio = small_config();
  bad_ratio.cross_shard_ratio = 1.5;
  EXPECT_THROW(AccountTxGenerator{bad_ratio}, std::invalid_argument);
  AccountModelConfig bad_window = small_config();
  bad_window.window_seconds = 0.0;
  EXPECT_THROW(AccountTxGenerator{bad_window}, std::invalid_argument);
}

}  // namespace
